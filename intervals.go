package tracex

import (
	"context"
	"math"
	"sort"

	"tracex/internal/machine"
	"tracex/internal/mpi"
	"tracex/internal/psins"
	"tracex/internal/trace"
	"tracex/internal/uncert"
)

// This file propagates an extrapolated signature's per-element predictive
// variances (trace.SignatureUncertainty, produced by posterior model
// averaging in internal/extrap) into prediction intervals on the final
// runtime.
//
// The chain has three steps:
//
//  1. Sensitivity. Each uncertain element of each block is perturbed ±1
//     predictive standard deviation around the extrapolated vector and
//     Equation 1 re-evaluated (psins.BlockCost); half the resulting time
//     spread is the element's first-order runtime sensitivity. Squared
//     sensitivities sum into a per-block time variance (elements are
//     fitted independently, so their errors are treated as independent).
//  2. Aggregation. Block variances sum into a total compute-time
//     variance V for the dominant task — again independence across
//     blocks, matching how Convolve sums block times.
//  3. Replay. For each requested level the communication replay is
//     re-run with every block cost uniformly scaled to the Student-t
//     bounds of the compute time, (C ± q·√V)/C. The replay — not a
//     linear approximation — turns compute bounds into runtime bounds,
//     so communication waits that absorb (or amplify) compute shifts are
//     modeled rather than assumed away.
func runtimeIntervals(ctx context.Context, dom *trace.Trace, uc *trace.SignatureUncertainty,
	prof *machine.Profile, comp *psins.Computation, prog *mpi.Program, net psins.Network,
	lf func(int) float64, levels []float64) ([]Interval, error) {
	if uc == nil || comp.Seconds <= 0 {
		return nil, nil
	}
	if levels == nil {
		levels = uncert.DefaultLevels
	}
	cons := trace.ElementConstraints(dom.Levels)
	totalVar := 0.0
	for i := range dom.Blocks {
		b := &dom.Blocks[i]
		vars := uc.VarsFor(b.ID)
		if vars == nil {
			continue
		}
		base, err := b.FV.Values(dom.Levels)
		if err != nil {
			continue
		}
		blockVar := 0.0
		for e, ve := range vars {
			if e >= len(base) || ve <= 0 {
				continue
			}
			sd := math.Sqrt(ve)
			hi := perturbedBlockSeconds(base, e, +sd, cons, dom.Levels, prof)
			lo := perturbedBlockSeconds(base, e, -sd, cons, dom.Levels, prof)
			if math.IsNaN(hi) || math.IsNaN(lo) {
				continue
			}
			d := (hi - lo) / 2
			blockVar += d * d
		}
		totalVar += blockVar
	}
	if totalVar <= 0 {
		return nil, nil
	}
	relSD := math.Sqrt(totalVar) / comp.Seconds

	sorted := make([]float64, 0, len(levels))
	for _, lv := range levels {
		if lv > 0 && lv < 1 {
			sorted = append(sorted, lv)
		}
	}
	sort.Float64s(sorted)
	out := make([]Interval, 0, len(sorted))
	for _, lv := range sorted {
		q := uncert.TQuantile(uc.Dof, lv)
		loScale := 1 - q*relSD
		if loScale < 0 {
			loScale = 0
		}
		loRT, err := replayScaled(ctx, prog, net, comp, lf, loScale)
		if err != nil {
			return nil, err
		}
		hiRT, err := replayScaled(ctx, prog, net, comp, lf, 1+q*relSD)
		if err != nil {
			return nil, err
		}
		out = append(out, Interval{Level: lv, Lo: loRT, Hi: hiRT})
	}
	return out, nil
}

// perturbedBlockSeconds re-evaluates Equation 1 with one element moved by
// delta and clamped to its physical range. NaN marks a perturbation the
// convolution cannot evaluate (e.g. a hit-rate combination off the
// profile's bandwidth surface); the caller skips that element.
func perturbedBlockSeconds(base []float64, e int, delta float64, cons []trace.Constraint, levels int, prof *machine.Profile) float64 {
	vals := append([]float64(nil), base...)
	v := vals[e] + delta
	if v < cons[e].Min {
		v = cons[e].Min
	}
	if v > cons[e].Max {
		v = cons[e].Max
	}
	vals[e] = v
	fv, err := trace.FromValues(vals, levels)
	if err != nil {
		return math.NaN()
	}
	bt, err := psins.BlockCost(&fv, prof)
	if err != nil {
		return math.NaN()
	}
	return bt.Seconds
}

// replayScaled re-runs the communication replay with every convolved block
// cost multiplied by scale, returning the predicted runtime.
func replayScaled(ctx context.Context, prog *mpi.Program, net psins.Network, comp *psins.Computation, lf func(int) float64, scale float64) (float64, error) {
	cost := psins.CostFromComputation(comp, lf)
	scaled := func(rank int, blockID uint64, share float64) (float64, error) {
		c, err := cost(rank, blockID, share)
		if err != nil {
			return 0, err
		}
		return c * scale, nil
	}
	res, err := psins.ReplayTraced(ctx, prog, net, scaled, nil)
	if err != nil {
		return 0, err
	}
	return res.Runtime, nil
}
