package tracex

import (
	"context"
	"fmt"
	"testing"
	"time"

	"tracex/internal/pebil"
)

// The cache-model benchmarks quantify the tentpole win of the reuse-distance
// redesign: a geometry sweep (the Table III cache-design use case) costs one
// simulation per geometry under the exact model, but one geometry-free
// recording plus a microsecond analytical derivation per geometry under the
// reuse model. Results are recorded in BENCH_cachemodel.json (regenerate
// with `make bench-cachemodel`).

// benchSweepOpt mirrors the cachedesign example's collection depth.
var benchSweepOpt = CollectOptions{SampleRefs: 200_000, MaxWarmRefs: 400_000}

const benchSweepCores = 96

// sweepCandidates builds the 8 candidate hierarchies of the cachedesign
// example: L1 sizes spanning 8–64 KB at 4 KB per way over the bluewaters
// baseline.
func sweepCandidates(tb testing.TB) []MachineConfig {
	tb.Helper()
	base, err := LoadMachine("bluewaters")
	if err != nil {
		tb.Fatal(err)
	}
	kbs := []int{8, 12, 16, 24, 32, 48, 56, 64}
	out := make([]MachineConfig, len(kbs))
	for i, kb := range kbs {
		c := base
		c.Name = fmt.Sprintf("candidate-%dKB-L1", kb)
		c.Caches = append([]CacheLevel(nil), base.Caches...)
		l1 := c.Caches[0]
		l1.SizeBytes = kb << 10
		l1.Assoc = kb / 4
		c.Caches[0] = l1
		out[i] = c
	}
	return out
}

// BenchmarkGeometrySweepExact re-simulates the application once per
// candidate geometry — the pre-redesign cost of a cache-design sweep. A
// fresh collector per run keeps every simulation honest (no memoization).
func BenchmarkGeometrySweepExact(b *testing.B) {
	app := testApp(b, "specfem3d")
	candidates := sweepCandidates(b)
	col, err := pebil.NewCollector()
	if err != nil {
		b.Fatal(err)
	}
	defer col.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sys := range candidates {
			if _, err := col.Collect(context.Background(), app, benchSweepCores, sys, []int{0}, benchSweepOpt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGeometrySweepAnalytical derives all candidate signatures from one
// stored reuse profile — the post-redesign cost. The recording itself is
// amortized over every geometry ever swept, so it sits outside the timer;
// BenchmarkReuseCollection prices it separately.
func BenchmarkGeometrySweepAnalytical(b *testing.B) {
	app := testApp(b, "specfem3d")
	candidates := sweepCandidates(b)
	col, err := pebil.NewCollector()
	if err != nil {
		b.Fatal(err)
	}
	defer col.Close()
	rs, err := col.CollectReuse(context.Background(), app, benchSweepCores, benchSweepOpt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sys := range candidates {
			if _, err := pebil.SignatureFromReuse(rs, app, sys, []int{0}, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkReuseCollection prices the one-time geometry-free recording the
// analytical sweep amortizes; comparable to a single exact collection.
func BenchmarkReuseCollection(b *testing.B) {
	app := testApp(b, "specfem3d")
	col, err := pebil.NewCollector()
	if err != nil {
		b.Fatal(err)
	}
	defer col.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.CollectReuse(context.Background(), app, benchSweepCores, benchSweepOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGeometrySweepSpeedup enforces the redesign's acceptance bar: an
// 8-geometry sweep served from one stored reuse profile must beat
// per-geometry re-simulation by at least 5x. The recording that produces
// the stored profile is priced separately — it costs about as much as
// ONE exact collection and is paid once per (app, core count) ever, so it
// amortizes across every geometry and every later process via the store.
func TestGeometrySweepSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short mode")
	}
	app := testApp(t, "specfem3d")
	candidates := sweepCandidates(t)
	col, err := pebil.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	// The one-time recording producing the stored profile.
	recordStart := time.Now()
	rs, err := col.CollectReuse(context.Background(), app, benchSweepCores, benchSweepOpt)
	if err != nil {
		t.Fatal(err)
	}
	recordCost := time.Since(recordStart)

	exact := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, sys := range candidates {
				if _, err := col.Collect(context.Background(), app, benchSweepCores, sys, []int{0}, benchSweepOpt); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	analytical := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, sys := range candidates {
				if _, err := pebil.SignatureFromReuse(rs, app, sys, []int{0}, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	speedup := float64(exact.NsPerOp()) / float64(analytical.NsPerOp())
	t.Logf("8-geometry sweep: exact %v/op, analytical %v/op from a stored profile (one-time recording %v), speedup %.0fx",
		exact.T/time.Duration(exact.N), analytical.T/time.Duration(analytical.N), recordCost, speedup)
	if speedup < 5 {
		t.Errorf("analytical sweep speedup %.1fx, want >= 5x", speedup)
	}
	// Amortization sanity: recording the profile costs no more than a few
	// exact single-geometry collections, so the redesign wins from the
	// second geometry onward.
	perGeom := time.Duration(exact.NsPerOp()) / time.Duration(len(candidates))
	if recordCost > 4*perGeom {
		t.Errorf("reuse recording %v costs more than 4 exact collections (%v each)", recordCost, perGeom)
	}
}
