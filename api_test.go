package tracex

import (
	"context"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"tracex/internal/trace"
)

var apiSetup struct {
	once   sync.Once
	app    *App
	cfg    MachineConfig
	prof   *Profile
	inputs []*Signature
	err    error
}

// smallSetup collects a tiny stencil3d pipeline shared by the API tests
// (built once; tests must treat the returned values as read-only).
func smallSetup(t *testing.T) (*App, MachineConfig, *Profile, []*Signature) {
	t.Helper()
	apiSetup.once.Do(func() {
		apiSetup.app, apiSetup.err = LoadApp("stencil3d")
		if apiSetup.err != nil {
			return
		}
		apiSetup.cfg, apiSetup.err = LoadMachine("bluewaters")
		if apiSetup.err != nil {
			return
		}
		apiSetup.prof, apiSetup.err = BuildProfile(apiSetup.cfg)
		if apiSetup.err != nil {
			return
		}
		opt := CollectOptions{SampleRefs: 60_000, MaxWarmRefs: 150_000}
		apiSetup.inputs, apiSetup.err = CollectInputs(apiSetup.app, []int{64, 128, 256}, apiSetup.cfg, opt)
	})
	if apiSetup.err != nil {
		t.Fatal(apiSetup.err)
	}
	return apiSetup.app, apiSetup.cfg, apiSetup.prof, apiSetup.inputs
}

func TestFormsReexports(t *testing.T) {
	if got := len(CanonicalForms()); got != 4 {
		t.Errorf("CanonicalForms: %d", got)
	}
	if got := len(ExtendedForms()); got != 6 {
		t.Errorf("ExtendedForms: %d", got)
	}
}

func TestExtrapolateWithCrossValidation(t *testing.T) {
	_, _, _, inputs := smallSetup(t)
	res, err := Extrapolate(inputs, 512, ExtrapOptions{
		Forms:         ExtendedForms(),
		CrossValidate: true,
	})
	if err != nil {
		t.Fatalf("Extrapolate(CV): %v", err)
	}
	if err := res.Signature.Validate(); err != nil {
		t.Fatalf("CV signature invalid: %v", err)
	}
	// No element may select the quadratic with only three inputs under CV
	// (the leave-one-out subsets have two points, too few for three
	// parameters).
	for _, f := range res.Fits {
		if f.Form == "quadratic" {
			t.Errorf("CV selected quadratic for %s with 3 inputs", f.Element)
		}
	}
}

func TestPredictDetailedExposesPerRank(t *testing.T) {
	app, _, prof, inputs := smallSetup(t)
	pred, err := DefaultEngine().Predict(context.Background(),
		PredictRequest{Signature: inputs[0], Profile: prof, App: app, WithReplay: true})
	if err != nil {
		t.Fatalf("Predict(WithReplay): %v", err)
	}
	replay := pred.Replay
	if len(replay.RankEnd) != inputs[0].CoreCount {
		t.Fatalf("replay has %d ranks", len(replay.RankEnd))
	}
	var max float64
	for _, e := range replay.RankEnd {
		if e > max {
			max = e
		}
	}
	if math.Abs(max-pred.Runtime) > 1e-12 {
		t.Errorf("prediction runtime %g != max rank end %g", pred.Runtime, max)
	}
}

func TestEnergyWrappers(t *testing.T) {
	app, cfg, prof, inputs := smallSetup(t)
	_ = app
	model := DefaultEnergyModel(cfg)
	rep, err := EstimateEnergy(inputs[0], prof, model)
	if err != nil {
		t.Fatalf("EstimateEnergy: %v", err)
	}
	if rep.Joules <= 0 {
		t.Errorf("energy %g", rep.Joules)
	}
	pts, err := DVFSSweep(inputs[0], prof, model, []float64{0.8, 1.0, 1.2})
	if err != nil {
		t.Fatalf("DVFSSweep: %v", err)
	}
	if len(pts) != 3 {
		t.Fatalf("sweep points %d", len(pts))
	}
	minE, minEDP := OptimalFrequency(pts)
	if minE.Scale == 0 || minEDP.Scale == 0 {
		t.Error("optimal frequencies not found")
	}
	// Bad model propagates an error.
	bad := model
	bad.BaseWatts = 0
	if _, err := EstimateEnergy(inputs[0], prof, bad); err == nil {
		t.Error("invalid energy model accepted")
	}
}

func TestClusterRanksWrapper(t *testing.T) {
	_, _, _, inputs := smallSetup(t)
	rc, err := ClusterRanks(inputs[0], 2, 1)
	if err != nil {
		t.Fatalf("ClusterRanks: %v", err)
	}
	if len(rc.Clusters) != 2 {
		t.Fatalf("clusters: %d", len(rc.Clusters))
	}
	if _, err := ClusterRanks(inputs[0], 99, 1); err == nil {
		t.Error("oversized k accepted")
	}
}

func TestProgramWrapper(t *testing.T) {
	app, _, _, _ := smallSetup(t)
	prog, err := Program(app, 64)
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	if prog.NumRanks() != 64 {
		t.Errorf("ranks: %d", prog.NumRanks())
	}
	if _, err := Program(app, 1); err == nil {
		t.Error("below-range core count accepted")
	}
}

func TestCollectInputsPropagatesErrors(t *testing.T) {
	app, cfg, _, _ := smallSetup(t)
	if _, err := CollectInputs(app, []int{64, 1}, cfg, CollectOptions{SampleRefs: 1000}); err == nil {
		t.Error("invalid core count accepted")
	}
}

func TestPrefetchVariantMachine(t *testing.T) {
	cfg, err := LoadMachine("bluewaters+pf")
	if err != nil {
		t.Fatalf("LoadMachine(+pf): %v", err)
	}
	if !cfg.Prefetch || cfg.Name != "bluewaters+pf" {
		t.Errorf("prefetch variant wrong: %+v", cfg.Name)
	}
	app, _ := LoadApp("stencil3d")
	sig, err := CollectSignature(app, 64, cfg, CollectOptions{SampleRefs: 60_000, MaxWarmRefs: 150_000})
	if err != nil {
		t.Fatalf("CollectSignature(+pf): %v", err)
	}
	// The streaming halo-pack block must show prefetch traffic.
	var sawPF bool
	for _, b := range sig.DominantTrace().Blocks {
		if b.FV.PrefetchPerRef > 0 {
			sawPF = true
		}
	}
	if !sawPF {
		t.Error("no block recorded prefetch traffic on the +pf machine")
	}
}

func TestPredictTimeline(t *testing.T) {
	app, _, prof, inputs := smallSetup(t)
	pred, err := DefaultEngine().Predict(context.Background(),
		PredictRequest{Signature: inputs[0], Profile: prof, App: app, WithTimeline: true})
	if err != nil {
		t.Fatalf("Predict(WithTimeline): %v", err)
	}
	tl := pred.Timeline
	if tl == nil || len(tl.Segments) == 0 {
		t.Fatal("empty timeline")
	}
	plain, err := DefaultEngine().Predict(context.Background(),
		PredictRequest{Signature: inputs[0], Profile: prof, App: app})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Runtime != pred.Runtime {
		t.Errorf("timeline replay diverged: %g vs %g", pred.Runtime, plain.Runtime)
	}
	// Every rank appears in the timeline.
	seen := map[int]bool{}
	for _, s := range tl.Segments {
		seen[s.Rank] = true
		if s.End > pred.Runtime+1e-12 {
			t.Errorf("segment past runtime: %+v", s)
		}
	}
	if len(seen) != inputs[0].CoreCount {
		t.Errorf("timeline covers %d of %d ranks", len(seen), inputs[0].CoreCount)
	}
}

func TestSignatureSerializationPreservesPrediction(t *testing.T) {
	app, _, prof, inputs := smallSetup(t)
	dir := t.TempDir()
	for _, ext := range []string{"json", "bin"} {
		path := filepath.Join(dir, "sig."+ext)
		if err := trace.Save(inputs[0], path); err != nil {
			t.Fatalf("Save(%s): %v", ext, err)
		}
		loaded, err := trace.Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", ext, err)
		}
		orig, err := DefaultEngine().Predict(context.Background(),
			PredictRequest{Signature: inputs[0], Profile: prof, App: app})
		if err != nil {
			t.Fatal(err)
		}
		round, err := DefaultEngine().Predict(context.Background(),
			PredictRequest{Signature: loaded, Profile: prof, App: app})
		if err != nil {
			t.Fatalf("Predict(loaded %s): %v", ext, err)
		}
		if orig.Runtime != round.Runtime {
			t.Errorf("%s round trip changed the prediction: %g vs %g",
				ext, orig.Runtime, round.Runtime)
		}
	}
}
