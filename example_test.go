package tracex_test

import (
	"context"
	"fmt"
	"log"

	"tracex"
)

// Example demonstrates the full trace-extrapolation pipeline: profile the
// target machine, collect signatures at three small core counts,
// extrapolate to a count that was never traced, and predict its runtime.
func Example() {
	app, err := tracex.LoadApp("stencil3d")
	if err != nil {
		log.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := tracex.BuildProfile(target) // MultiMAPS sweep
	if err != nil {
		log.Fatal(err)
	}
	inputs, err := tracex.CollectInputs(app, []int{64, 128, 256}, target,
		tracex.CollectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tracex.Extrapolate(inputs, 512, tracex.ExtrapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	pred, err := tracex.DefaultEngine().Predict(context.Background(),
		tracex.PredictRequest{Signature: res.Signature, Profile: prof, App: app})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted %d-core runtime: %.1f s", pred.CoreCount, pred.Runtime)
}

// ExampleExtrapolate shows form selection per feature-vector element.
func ExampleExtrapolate() {
	app, _ := tracex.LoadApp("uh3d")
	target, _ := tracex.LoadMachine("bluewaters")
	inputs, err := tracex.CollectInputs(app, []int{1024, 2048, 4096}, target,
		tracex.CollectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := tracex.Extrapolate(inputs, 8192, tracex.ExtrapOptions{
		// The paper's future-work extension, guarded by cross-validation:
		Forms:         tracex.ExtendedForms(),
		CrossValidate: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.Fits {
		if f.Element == "mem_ops" {
			fmt.Printf("block %d memory ops follow a %s law\n", f.BlockID, f.Form)
		}
	}
}

// ExampleMeasure runs the detailed execution simulation — the stand-in for
// timing a real run — to validate a prediction.
func ExampleMeasure() {
	app, _ := tracex.LoadApp("cgsolve")
	target, _ := tracex.LoadMachine("sandybridge")
	measured, err := tracex.Measure(app, 256, target, tracex.CollectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured: %.2f s (compute %.2f s, comm %.2f s)",
		measured.Runtime, measured.ComputeSeconds, measured.CommSeconds)
}

// ExampleDVFSSweep prices energy at scale from an extrapolated trace and
// finds the energy-optimal core frequency.
func ExampleDVFSSweep() {
	app, _ := tracex.LoadApp("uh3d")
	target, _ := tracex.LoadMachine("bluewaters")
	prof, _ := tracex.BuildProfile(target)
	inputs, err := tracex.CollectInputs(app, []int{1024, 2048, 4096}, target,
		tracex.CollectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, _ := tracex.Extrapolate(inputs, 8192, tracex.ExtrapOptions{})
	model := tracex.DefaultEnergyModel(target)
	pts, err := tracex.DVFSSweep(res.Signature, prof, model,
		[]float64{0.6, 0.8, 1.0, 1.2})
	if err != nil {
		log.Fatal(err)
	}
	minEnergy, _ := tracex.OptimalFrequency(pts)
	fmt.Printf("energy-optimal frequency: %.1f×nominal", minEnergy.Scale)
}
