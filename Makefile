# Convenience targets for the tracex repository (Go stdlib only; no
# external dependencies).

GO ?= go

.PHONY: all build vet test test-short test-race fuzz bench bench-cachemodel bench-collect bench-engine bench-fleet bench-obs bench-sampling bench-sampling-smoke bench-serve bench-serve-smoke bench-server bench-store bench-smoke bench-uncert bench-uncert-smoke fleet-smoke serve experiments examples csv clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./internal/obs
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Race-detector pass over the whole tree (the Engine's concurrency
# guarantees are exercised by the tracex and internal/memo tests).
test-race:
	$(GO) test -race ./...

# Short fuzz passes over the signature codec and the wire strict decoder
# (CI runs the same smoke).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzSignatureDecode -fuzztime 10s ./internal/store
	$(GO) test -run '^$$' -fuzz FuzzDecodeStrict -fuzztime 10s ./wire

# One iteration of every exhibit benchmark (Table/Figure regeneration).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Serial vs batched vs arena-parallel signature collection (the PR's
# tentpole), plus the batched hot loops underneath it (address generation
# and cache AccessBatch). Allocation counts should be 0 in steady state.
bench-collect:
	$(GO) test -run '^$$' -bench 'BenchmarkCollect/' -benchmem -benchtime=3x ./internal/pebil
	$(GO) test -run '^$$' -bench 'BenchmarkAccessBatch|BenchmarkStrideNextBatch|BenchmarkRandomNextBatch' -benchmem ./internal/cache ./internal/addrgen

# One iteration of every benchmark in the tree: a cheap CI smoke that
# catches benchmarks that no longer compile or crash, without timing noise.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime=1x ./...

# Analytical cache model vs exact re-simulation on an 8-geometry cache
# design sweep, plus the one-time reuse-distance recording the analytical
# sweep amortizes. Results recorded in BENCH_cachemodel.json; the >=5x
# sweep acceptance bar is enforced by TestGeometrySweepSpeedup.
bench-cachemodel:
	$(GO) test -run '^$$' -bench 'BenchmarkGeometrySweep|BenchmarkReuseCollection' -benchmem -benchtime=3x .

# Serial vs Engine-parallel CollectInputs plus the cache-hit fast path.
bench-engine:
	$(GO) test -run '^$$' -bench 'BenchmarkCollectInputs|BenchmarkCollectSignatureCached' -benchtime=3x .

# Observability micro-benchmarks: per-update cost of counters, gauges,
# histograms and spans, instrumented vs disabled (nil-registry) paths.
bench-obs:
	$(GO) test -run '^$$' -bench 'BenchmarkObs' -benchmem ./internal/obs

# Handler-path cost of the prediction service, coalescing on vs off
# (decode, canonical key, admission, marshal — simulation excluded).
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkServerPredict' -benchmem ./internal/server

# Signature-store costs: codec encode/decode throughput and the
# cold-collect vs disk-warm-start ratio on the Table-1 uh3d workload.
bench-store:
	$(GO) test -run '^$$' -bench 'BenchmarkStoreEncode|BenchmarkStoreDecode' -benchmem ./internal/store
	$(GO) test -run '^$$' -bench 'BenchmarkStoreWarmStart' -benchtime=3x .

# Serving-path load harness: the standard uniform/Zipf closed-loop and
# open-loop runs, recorded into BENCH_serve.json (EXPERIMENTS.md section).
bench-serve:
	$(GO) run ./cmd/tracexload -inprocess -duration 10s -warmup 2s -workers 64 -keys 32 -label closed-uniform
	$(GO) run ./cmd/tracexload -inprocess -duration 10s -warmup 2s -workers 64 -keys 32 -zipf 1.2 -label closed-zipf
	$(GO) run ./cmd/tracexload -inprocess -duration 10s -warmup 2s -rate 800 -workers 128 -keys 32 -zipf 1.2 -label open-800rps-zipf

# CI smoke: a 5-second low-rate open-loop run against an in-process daemon
# must show real throughput and no server errors. Results stay out of
# BENCH_serve.json (-out "").
bench-serve-smoke:
	$(GO) run ./cmd/tracexload -inprocess -duration 5s -warmup 1s -rate 50 -workers 16 -keys 4 -sample-refs 2000 -out "" -label smoke -assert-min-rps 10 -assert-max-5xx 0

# Adaptive-vs-fixed sampling comparison on the Table I workloads at their
# paper core counts, recorded into BENCH_collect.json's "sampling" section
# under the "full" label (the collector microbench results in the same
# file are preserved).
bench-sampling:
	$(GO) run ./scripts/sampling-bench -label full

# CI smoke: the adaptive default must simulate at least 3x fewer
# references than the fixed default on every Table I app while predicting
# a runtime within 1% of it; recorded under the "smoke" label.
bench-sampling-smoke:
	$(GO) run ./scripts/sampling-bench -label smoke -assert-min-ratio 3 -assert-max-drift 0.01

# Held-out interval calibration over the full app × machine matrix,
# recorded into BENCH_uncert.json under the "full" label. A calibrated
# posterior shows ~0.9 coverage on the 90% band.
bench-uncert:
	$(GO) run ./scripts/uncert-bench -label full

# CI smoke: the reduced matrix must show 90%-band coverage inside the
# [0.75, 1.0] acceptance band; the run is recorded under the "smoke" label.
bench-uncert-smoke:
	$(GO) run ./scripts/uncert-bench -label smoke -apps stencil3d,cgsolve -machines bluewaters,kraken -sample-refs 20000 -assert-min-cov 0.75 -assert-max-cov 1.0

# Distributed acceptance check: three tracexd processes on loopback must
# collect a shared identity exactly once (on its rendezvous owner), serve
# it with "peer" provenance on the other two, and degrade to a local
# collection when the owner dies. Zero 5xx allowed.
fleet-smoke:
	$(GO) run ./scripts/fleet-smoke

# Fleet wall-clock measurements (cold fill single-node vs 3-node cluster,
# warm-start replication of a wiped node), recorded into BENCH_fleet.json.
bench-fleet:
	$(GO) run ./scripts/fleet-smoke -bench -out BENCH_fleet.json

# Run the prediction daemon with development-friendly defaults.
serve:
	$(GO) run ./cmd/tracexd -addr 127.0.0.1:8321 -request-timeout 2m

# Regenerate every table, figure, ablation and extension (~1 minute).
experiments:
	$(GO) run ./cmd/experiments -run all

# Export exhibit data as CSV into ./csv for external plotting.
csv:
	$(GO) run ./cmd/experiments -run all -csv csv

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/cachedesign
	$(GO) run ./examples/clustering
	$(GO) run ./examples/energy
	$(GO) run ./examples/calibration
	$(GO) run ./examples/specfem3d
	$(GO) run ./examples/uh3d

clean:
	rm -rf csv test_output.txt bench_output.txt
