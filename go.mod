module tracex

go 1.22
