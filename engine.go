package tracex

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"tracex/internal/extrap"
	"tracex/internal/memo"
	"tracex/internal/multimaps"
	"tracex/internal/pebil"
	"tracex/internal/psins"
)

// Engine is a long-lived, concurrency-safe orchestrator for the
// trace-extrapolation pipeline. It memoizes the two expensive, deterministic
// artifacts — machine profiles (keyed by a MachineConfig fingerprint) and
// application signatures (keyed by app, core count, machine and collection
// options) — deduplicates identical in-flight work so concurrent callers
// share one simulation, and fans independent collections and predictions out
// across a bounded worker pool. All methods honour context cancellation:
// cancelling stops the underlying simulations promptly and returns
// ctx.Err().
//
// Cached profiles and signatures are shared between callers and must be
// treated as read-only.
//
// The package-level convenience functions (BuildProfile, CollectSignature,
// CollectInputs, ...) are thin wrappers over a process-wide default Engine;
// construct a dedicated Engine to control parallelism, cache capacity and
// default collection options.
type Engine struct {
	parallelism int
	collectOpt  CollectOptions
	sem         chan struct{}
	profiles    *memo.Cache[string, *Profile]
	sigs        *memo.Cache[sigKey, *Signature]
	stats       engineCounters
}

// sigKey identifies one signature collection. The collect options are
// normalized (defaults filled, execution-only knobs cleared) so equivalent
// requests share an entry.
type sigKey struct {
	app     string
	cores   int
	machine string // machine.Config.Fingerprint()
	opt     CollectOptions
}

// engineCounters backs EngineStats with atomics.
type engineCounters struct {
	profileBuilds, profileHits uint64
	collections, collectHits   uint64
	predictions                uint64
}

// EngineStats is a snapshot of an Engine's cumulative activity, chiefly for
// tests, monitoring, and cache-sizing decisions.
type EngineStats struct {
	// ProfileBuilds counts MultiMAPS sweeps actually executed;
	// ProfileHits counts profile requests served without a sweep.
	ProfileBuilds, ProfileHits uint64
	// Collections counts signature collections actually simulated;
	// CollectionHits counts collection requests served without simulation.
	Collections, CollectionHits uint64
	// Predictions counts completed convolution+replay predictions.
	Predictions uint64
}

// Stats returns a snapshot of the engine's cumulative activity.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		ProfileBuilds:  atomic.LoadUint64(&e.stats.profileBuilds),
		ProfileHits:    atomic.LoadUint64(&e.stats.profileHits),
		Collections:    atomic.LoadUint64(&e.stats.collections),
		CollectionHits: atomic.LoadUint64(&e.stats.collectHits),
		Predictions:    atomic.LoadUint64(&e.stats.predictions),
	}
}

// engineConfig accumulates functional options.
type engineConfig struct {
	parallelism int
	cacheSize   int
	collectOpt  CollectOptions
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

// WithParallelism bounds the number of pipeline tasks (collections,
// predictions, study stages) the engine runs concurrently; n ≤ 0 selects
// one worker per available CPU. Per-block simulation parallelism inside one
// collection is governed separately by CollectOptions.Parallelism.
func WithParallelism(n int) EngineOption {
	return func(c *engineConfig) { c.parallelism = n }
}

// WithCacheSize sets how many machine profiles and application signatures
// the engine retains (each in its own LRU cache). Zero disables memoization
// — every request simulates — while still deduplicating identical in-flight
// work; negative means unbounded. The default is 64.
func WithCacheSize(n int) EngineOption {
	return func(c *engineConfig) { c.cacheSize = n }
}

// WithCollectOptions sets the collection options used when a caller passes
// the zero CollectOptions.
func WithCollectOptions(opt CollectOptions) EngineOption {
	return func(c *engineConfig) { c.collectOpt = opt }
}

// NewEngine returns an Engine with the given options applied.
func NewEngine(opts ...EngineOption) *Engine {
	cfg := engineConfig{cacheSize: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.parallelism <= 0 {
		cfg.parallelism = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		parallelism: cfg.parallelism,
		collectOpt:  cfg.collectOpt,
		sem:         make(chan struct{}, cfg.parallelism),
		profiles:    memo.New[string, *Profile](cfg.cacheSize),
		sigs:        memo.New[sigKey, *Signature](cfg.cacheSize),
	}
}

// defaultEngine backs the package-level convenience functions.
var defaultEngine struct {
	once sync.Once
	e    *Engine
}

// DefaultEngine returns the process-wide Engine behind the package-level
// convenience functions.
func DefaultEngine() *Engine {
	defaultEngine.once.Do(func() { defaultEngine.e = NewEngine() })
	return defaultEngine.e
}

// fanOut runs n tasks across the engine's worker pool, returning the first
// error. A failure (or ctx cancellation) cancels the tasks that have not
// completed; fanOut returns only after every started task has finished.
func (e *Engine) fanOut(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				errc <- ctx.Err()
				return
			}
			defer func() { <-e.sem }()
			errc <- task(ctx, i)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
			cancel() // stop the stragglers
		}
	}
	return first
}

// Profile returns the machine profile for cfg, running the MultiMAPS sweep
// on the first request and serving memoized results afterwards. Concurrent
// requests for the same configuration share one sweep.
func (e *Engine) Profile(ctx context.Context, cfg MachineConfig) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof, hit, err := e.profiles.Do(ctx, cfg.Fingerprint(), func() (*Profile, error) {
		atomic.AddUint64(&e.stats.profileBuilds, 1)
		return multimaps.Run(ctx, cfg, multimaps.DefaultOptions(cfg))
	})
	if hit {
		atomic.AddUint64(&e.stats.profileHits, 1)
	}
	return prof, err
}

// CollectSignature traces the application at the given core count against
// the target machine, memoizing the result: a second identical request is
// served from cache with zero new simulation. A zero opt selects the
// engine's default collection options (WithCollectOptions).
func (e *Engine) CollectSignature(ctx context.Context, app *App, cores int, target MachineConfig, opt CollectOptions) (*Signature, error) {
	if app == nil {
		return nil, fmt.Errorf("tracex: nil application")
	}
	if opt == (CollectOptions{}) {
		opt = e.collectOpt
	}
	key := sigKey{app: app.Name(), cores: cores, machine: target.Fingerprint(), opt: opt.Normalized()}
	sig, hit, err := e.sigs.Do(ctx, key, func() (*Signature, error) {
		atomic.AddUint64(&e.stats.collections, 1)
		return pebil.Collect(ctx, app, cores, target, nil, opt)
	})
	if hit {
		atomic.AddUint64(&e.stats.collectHits, 1)
	}
	return sig, err
}

// CollectInputs traces the application at each of the given core counts —
// the "series of smaller core counts" the extrapolation consumes — fanning
// the collections out across the engine's worker pool.
func (e *Engine) CollectInputs(ctx context.Context, app *App, counts []int, target MachineConfig, opt CollectOptions) ([]*Signature, error) {
	out := make([]*Signature, len(counts))
	err := e.fanOut(ctx, len(counts), func(ctx context.Context, i int) error {
		sig, err := e.CollectSignature(ctx, app, counts[i], target, opt)
		if err != nil {
			return fmt.Errorf("tracex: collecting at %d cores: %w", counts[i], err)
		}
		out[i] = sig
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Extrapolate validates opt and fits canonical scaling forms to every
// feature-vector element of the dominant task across the input signatures,
// synthesizing the signature at targetCores.
func (e *Engine) Extrapolate(ctx context.Context, inputs []*Signature, targetCores int, opt ExtrapOptions) (*ExtrapResult, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return extrap.Extrapolate(inputs, targetCores, opt)
}

// PredictRequest describes one runtime prediction for Engine.Predict.
type PredictRequest struct {
	// Signature is the application signature to predict from (collected or
	// extrapolated). Required.
	Signature *Signature
	// App supplies the communication event trace. Required.
	App *App
	// Profile is the machine profile to convolve against. When nil, the
	// engine builds (and memoizes) the profile for Machine.
	Profile *Profile
	// Machine is the configuration to profile when Profile is nil; when
	// Machine is also nil, the signature's machine name is looked up among
	// the predefined configurations.
	Machine *MachineConfig
	// WithReplay attaches the full per-rank replay result to the returned
	// Prediction.
	WithReplay bool
	// WithTimeline attaches the per-rank segment timeline to the returned
	// Prediction. Memory grows with rank count × events — intended for
	// small-to-moderate replays.
	WithTimeline bool
}

// Predict produces the PMaC-framework runtime prediction for one request:
// the signature's dominant trace is convolved with the machine profile
// (Equation 1) and the resulting per-block times drive a replay of the
// application's communication event trace. The returned Prediction carries
// the replay result and timeline when requested. Predict replaces the
// Predict/PredictDetailed/PredictTimeline trio.
func (e *Engine) Predict(ctx context.Context, req PredictRequest) (*Prediction, error) {
	if req.Signature == nil {
		return nil, fmt.Errorf("tracex: predict request has no signature")
	}
	if req.App == nil {
		return nil, fmt.Errorf("tracex: predict request has no application")
	}
	prof := req.Profile
	if prof == nil {
		cfg := req.Machine
		if cfg == nil {
			c, err := LoadMachine(req.Signature.Machine)
			if err != nil {
				return nil, err
			}
			cfg = &c
		}
		var err error
		prof, err = e.Profile(ctx, *cfg)
		if err != nil {
			return nil, err
		}
	}
	pred, err := predict(ctx, req.Signature, prof, req.App, req.WithReplay, req.WithTimeline)
	if err != nil {
		return nil, err
	}
	atomic.AddUint64(&e.stats.predictions, 1)
	return pred, nil
}

// PredictMany evaluates a batch of predictions across the engine's worker
// pool, returning results in request order. The first failure cancels the
// remaining requests.
func (e *Engine) PredictMany(ctx context.Context, reqs []PredictRequest) ([]*Prediction, error) {
	out := make([]*Prediction, len(reqs))
	err := e.fanOut(ctx, len(reqs), func(ctx context.Context, i int) error {
		pred, err := e.Predict(ctx, reqs[i])
		if err != nil {
			return fmt.Errorf("tracex: prediction %d: %w", i, err)
		}
		out[i] = pred
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Measure runs the detailed execution simulation of the application at the
// given core count on the target machine (the reproduction's ground truth).
func (e *Engine) Measure(ctx context.Context, app *App, cores int, target MachineConfig, opt CollectOptions) (*Prediction, error) {
	if opt == (CollectOptions{}) {
		opt = e.collectOpt
	}
	return measure(ctx, app, cores, target, opt)
}

// StudyRequest describes a full extrapolation study: collect signatures at
// a series of small core counts, extrapolate to a larger count, and predict
// the large-scale runtime.
type StudyRequest struct {
	// App is the proxy application. Required.
	App *App
	// Machine is the target system to profile and simulate.
	Machine MachineConfig
	// InputCounts are the core counts to trace (the paper uses three).
	InputCounts []int
	// TargetCores is the count to extrapolate to (beyond every input).
	TargetCores int
	// Collect tunes signature collection; zero selects the engine default.
	Collect CollectOptions
	// Extrap tunes the extrapolation.
	Extrap ExtrapOptions
	// WithTruth additionally collects a signature at TargetCores and
	// predicts from it — the paper's Table I comparison baseline.
	WithTruth bool
}

// StudyResult is the product of an extrapolation study.
type StudyResult struct {
	// Profile is the machine profile the predictions convolved against.
	Profile *Profile
	// Inputs are the signatures collected at the small core counts.
	Inputs []*Signature
	// Extrapolation is the canonical-form fit and synthesized signature.
	Extrapolation *ExtrapResult
	// Extrapolated predicts the target-scale runtime from the synthesized
	// signature.
	Extrapolated *Prediction
	// Truth is the actually-collected target-scale signature and
	// Collected the prediction made from it (both nil unless
	// StudyRequest.WithTruth).
	Truth     *Signature
	Collected *Prediction
}

// Study runs a full extrapolation study: the machine profile, every input
// collection and (optionally) the target-scale truth collection execute
// concurrently on the worker pool, then the extrapolation and predictions
// complete the pipeline.
func (e *Engine) Study(ctx context.Context, req StudyRequest) (*StudyResult, error) {
	if req.App == nil {
		return nil, fmt.Errorf("tracex: study request has no application")
	}
	if len(req.InputCounts) == 0 {
		return nil, fmt.Errorf("tracex: study request has no input core counts")
	}
	if err := req.Extrap.Validate(); err != nil {
		return nil, err
	}
	if err := req.Machine.Validate(); err != nil {
		return nil, err
	}
	res := &StudyResult{Inputs: make([]*Signature, len(req.InputCounts))}
	// One task per input count, plus the profile sweep, plus the optional
	// truth collection — all independent.
	n := len(req.InputCounts) + 1
	if req.WithTruth {
		n++
	}
	err := e.fanOut(ctx, n, func(ctx context.Context, i int) error {
		switch {
		case i < len(req.InputCounts):
			sig, err := e.CollectSignature(ctx, req.App, req.InputCounts[i], req.Machine, req.Collect)
			if err != nil {
				return fmt.Errorf("tracex: collecting at %d cores: %w", req.InputCounts[i], err)
			}
			res.Inputs[i] = sig
			return nil
		case i == len(req.InputCounts):
			prof, err := e.Profile(ctx, req.Machine)
			if err != nil {
				return err
			}
			res.Profile = prof
			return nil
		default:
			sig, err := e.CollectSignature(ctx, req.App, req.TargetCores, req.Machine, req.Collect)
			if err != nil {
				return fmt.Errorf("tracex: collecting truth at %d cores: %w", req.TargetCores, err)
			}
			res.Truth = sig
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	res.Extrapolation, err = e.Extrapolate(ctx, res.Inputs, req.TargetCores, req.Extrap)
	if err != nil {
		return nil, err
	}
	res.Extrapolated, err = e.Predict(ctx, PredictRequest{
		Signature: res.Extrapolation.Signature, App: req.App, Profile: res.Profile,
	})
	if err != nil {
		return nil, err
	}
	if req.WithTruth {
		res.Collected, err = e.Predict(ctx, PredictRequest{
			Signature: res.Truth, App: req.App, Profile: res.Profile,
		})
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// predict is the shared prediction implementation: convolve the dominant
// trace with the profile, then replay the communication event trace with
// the convolved per-block costs.
func predict(ctx context.Context, sig *Signature, prof *Profile, app *App, withReplay, withTimeline bool) (*Prediction, error) {
	if sig.Machine != prof.Machine.Name {
		return nil, fmt.Errorf("tracex: %w: signature simulated %q but profile is for %q",
			ErrMachineMismatch, sig.Machine, prof.Machine.Name)
	}
	dom := sig.DominantTrace()
	if dom == nil {
		return nil, fmt.Errorf("tracex: %w", ErrNoTraces)
	}
	comp, err := psins.Convolve(dom, prof)
	if err != nil {
		return nil, err
	}
	prog, err := app.Program(sig.CoreCount)
	if err != nil {
		return nil, err
	}
	net, err := psins.NewNetwork(prof.Machine.Network)
	if err != nil {
		return nil, err
	}
	// Non-dominant ranks execute the same blocks scaled by their load
	// factor relative to the dominant rank (the paper scales every trace
	// file from the slowest task's prediction vector).
	domFactor := app.LoadFactor(dom.Rank)
	lf := func(rank int) float64 { return app.LoadFactor(rank) / domFactor }
	var tl *Timeline
	if withTimeline {
		tl = &Timeline{}
	}
	res, err := psins.ReplayTraced(ctx, prog, net, psins.CostFromComputation(comp, lf), tl)
	if err != nil {
		return nil, err
	}
	pred := &Prediction{
		App:            sig.App,
		CoreCount:      sig.CoreCount,
		Machine:        sig.Machine,
		Runtime:        res.Runtime,
		ComputeSeconds: res.ComputeTime[dom.Rank],
		CommSeconds:    res.CommTime[dom.Rank],
		MemSeconds:     comp.MemSeconds,
		FPSeconds:      comp.FPSeconds,
		Timeline:       tl,
	}
	if withReplay {
		pred.Replay = res
	}
	return pred, nil
}
