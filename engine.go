package tracex

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tracex/internal/cache"
	"tracex/internal/extrap"
	"tracex/internal/memo"
	"tracex/internal/multimaps"
	"tracex/internal/obs"
	"tracex/internal/pebil"
	"tracex/internal/psins"
	"tracex/internal/store"
)

// Engine is a long-lived, concurrency-safe orchestrator for the
// trace-extrapolation pipeline. It memoizes the two expensive, deterministic
// artifacts — machine profiles (keyed by a MachineConfig fingerprint) and
// application signatures (keyed by app, core count, machine and collection
// options) — deduplicates identical in-flight work so concurrent callers
// share one simulation, and fans independent collections and predictions out
// across a bounded worker pool. All methods honour context cancellation:
// cancelling stops the underlying simulations promptly and returns
// ctx.Err().
//
// Every engine carries an observability registry (internal/obs): pipeline
// stages record spans and the simulators publish counters into it, Stats
// returns the digest, and Registry exposes the raw registry for the HTTP
// metrics endpoint. WithRegistry(nil) disables collection.
//
// Cached profiles and signatures are shared between callers and must be
// treated as read-only.
//
// An Engine holds long-lived resources — the collection worker arena and,
// with WithStore, the on-disk store handle. Call Close when finished with
// it; the process-wide DefaultEngine is intentionally never closed.
//
// The package-level convenience functions (BuildProfile, CollectSignature,
// CollectInputs, ...) are thin wrappers over a process-wide default Engine;
// construct a dedicated Engine to control parallelism, cache capacity and
// default collection options.
type Engine struct {
	parallelism int
	collectOpt  CollectOptions
	model       CacheModel
	confErr     error // first configuration error; poisons every method
	sem         chan struct{}
	collector   *pebil.Collector
	profiles    *memo.Cache[string, *Profile]
	sigs        *memo.Cache[sigKey, *Signature]
	reuse       *memo.Cache[reuseKey, *ReuseSignature]
	disk        *store.Store
	remote      RemoteTier
	reg         *obs.Registry
	predictions *obs.Counter
	studies     *obs.Counter
	putErrors   *obs.Counter
	peerFetches *obs.Counter
	peerHits    *obs.Counter
	closeOnce   sync.Once
	closed      atomic.Bool
	closeErr    error
}

// sigKey identifies one signature collection. The collect options are
// normalized (defaults filled, execution-only knobs cleared) so equivalent
// requests share an entry.
type sigKey struct {
	app     string
	cores   int
	machine string // machine.Config.Fingerprint()
	opt     CollectOptions
}

// reuseKey identifies one reuse-distance collection. No machine component:
// the profile is geometry-free, and the cache model is cleared from the
// options because the same profile serves every model.
type reuseKey struct {
	app   string
	cores int
	opt   CollectOptions
}

// reuseOpt normalizes options to the reuse profile's identity.
func reuseOpt(opt CollectOptions) CollectOptions {
	n := opt.Normalized()
	n.Model = ""
	return n
}

// Provenance reports which tier of the engine's signature cache satisfied
// a collection request: the in-memory memo, the persistent on-disk store,
// or a fresh simulation. The HTTP service surfaces it as the `from` field
// on predict responses.
type Provenance string

const (
	// FromMemory: served by the in-memory memo cache (or by joining an
	// identical in-flight collection).
	FromMemory Provenance = "memory"
	// FromDisk: loaded from the persistent signature store — a warm
	// start, no simulation ran.
	FromDisk Provenance = "disk"
	// FromCollected: simulated fresh (and written through to both cache
	// tiers).
	FromCollected Provenance = "collected"
	// FromAnalytical: derived analytically from a reuse-distance
	// signature for this geometry — the underlying geometry-free profile
	// may have come from any tier, but no per-geometry simulation ran.
	FromAnalytical Provenance = "analytical"
	// FromPeer: fetched from a remote tier (WithRemoteTier) — another
	// tracexd that already holds the signature — and written through to
	// the local disk store; no local simulation ran.
	FromPeer Provenance = "peer"
)

// RemoteTier is a remote source of already-collected signatures the engine
// consults between its disk tier and a fresh collection (see
// WithRemoteTier). An implementation (internal/fleet) returns the signature
// for the exact (app, cores, machine, options) identity, (nil, nil) when no
// remote holds it, or an error for transient trouble; the engine treats
// both of the latter the same — it falls back to collecting locally, so an
// unreachable remote never fails a request on its own.
type RemoteTier interface {
	FetchSignature(ctx context.Context, app string, cores int, machine string, opt CollectOptions) (*Signature, error)
}

// SignatureStore is the persistent, content-addressed signature store an
// Engine warm-starts from (see WithStore and internal/store).
type SignatureStore = store.Store

// SignatureKey is the logical identity of a stored signature: application,
// machine (name plus configuration fingerprint), core count and normalized
// collection options, flattened to the store's string form.
type SignatureKey = store.Key

// StoreKey returns the persistent-store key the Engine files a collection
// under. Exported so tools importing or exporting signatures (the tracex
// CLI) index them exactly as a warm-starting Engine will look them up.
func StoreKey(app string, cores int, m MachineConfig, opt CollectOptions) SignatureKey {
	return store.Key{
		App:       app,
		Machine:   m.Name,
		MachineFP: shortHash(m.Fingerprint()),
		Cores:     cores,
		Opt:       shortHash(optIdentity(opt.Normalized())),
	}
}

// ReuseStoreKey returns the persistent-store key for a machine-independent
// reuse-distance signature: no machine name or fingerprint — one stored
// profile serves every cache geometry — and the model cleared from the
// option identity, since the profile is the same whichever model consumes
// it.
func ReuseStoreKey(app string, cores int, opt CollectOptions) SignatureKey {
	return store.Key{
		App:   app,
		Cores: cores,
		Opt:   shortHash(optIdentity(reuseOpt(opt))),
		Kind:  store.KindReuse,
	}
}

// optIdentity renders a normalized configuration in the stable identity
// form hashed into store keys. For the exact model it reproduces the
// pre-Model `%+v` rendering of CollectorConfig byte for byte, so stores
// written before the Model field existed keep resolving under their
// original keys. Fixed sampling policies normalize into the legacy
// SampleRefs/MaxWarmRefs ints (see CollectorConfig.Normalized), so only
// adaptive policies — which produce different hit rates — extend the
// identity.
func optIdentity(n CollectOptions) string {
	s := fmt.Sprintf("{SampleRefs:%d MaxWarmRefs:%d Workers:0 BatchSize:0 SharedHierarchy:%t}",
		n.SampleRefs, n.MaxWarmRefs, n.SharedHierarchy)
	if n.Model != "" && n.Model != ModelExact {
		s += " Model:" + string(n.Model)
	}
	if n.Sampling.IsAdaptive() {
		s += " Sampling:" + n.Sampling.String()
	}
	return s
}

// shortHash condenses a long identity string (machine fingerprint, option
// set) into a 16-hex-digit discriminator for manifest keys.
func shortHash(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:8])
}

// ErrBadParallelism reports a WithParallelism value below 1. The worker
// pool cannot be sized by guesswork: a zero or negative bound used to be
// silently replaced, which hid misconfigured callers; it is now rejected up
// front (errors.Is-matchable against this sentinel).
var ErrBadParallelism = errors.New("parallelism must be at least 1")

// ErrEngineClosed reports a pipeline call on an Engine whose Close has been
// called. Errors returned after Close wrap this sentinel (errors.Is).
var ErrEngineClosed = errors.New("tracex: engine is closed")

// CanonicalRequestKey returns a stable, collision-resistant identity for a
// request value: a SHA-256 over kind and the value's canonical JSON
// encoding, rendered as "kind:hex". Two requests share a key exactly when
// they marshal to the same bytes — encoding/json emits struct fields in
// declaration order and map keys sorted, so the encoding (and therefore the
// key) is deterministic. Callers deduplicating identical in-flight work
// (the HTTP server's request coalescing, batch schedulers) should pass a
// kind per operation so a predict and a study over the same payload never
// collide.
func CanonicalRequestKey(kind string, req any) (string, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("tracex: canonical key for %s request: %w", kind, err)
	}
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write(b)
	return kind + ":" + hex.EncodeToString(h.Sum(nil)), nil
}

// EngineStats is a snapshot of an Engine's cumulative activity — cache
// effectiveness, pool pressure and per-stage wall-clock — backed by the
// engine's observability registry. Chiefly for tests, monitoring and
// cache-sizing decisions; `tracex stats` pretty-prints it.
type EngineStats struct {
	// ProfileBuilds counts MultiMAPS sweeps actually executed;
	// ProfileHits counts profile requests served without a sweep;
	// ProfileEvictions counts cached profiles discarded by LRU pressure.
	ProfileBuilds, ProfileHits, ProfileEvictions uint64
	// Collections counts collection requests that missed the in-memory
	// signature cache (disk and peer warm-starts count here too; only
	// StageSummaries' pebil.* rows prove a simulation actually ran);
	// CollectionHits counts collection requests served from memory;
	// SignatureEvictions counts cached signatures discarded by LRU pressure.
	Collections, CollectionHits, SignatureEvictions uint64
	// ReuseCollections counts reuse-distance profiles actually recorded;
	// ReuseHits counts reuse-profile requests served from the in-memory
	// cache without recording (disk warm-starts count as collections here
	// and as StoreHits below).
	ReuseCollections, ReuseHits uint64
	// Predictions counts completed convolution+replay predictions; Studies
	// counts completed extrapolation studies.
	Predictions, Studies uint64
	// StoreHits and StoreMisses count persistent-store lookups (zero
	// without WithStore); StorePuts counts signatures written through to
	// disk; StoreCorruptions counts records that failed checksum or
	// structural validation and were quarantined.
	StoreHits, StoreMisses, StorePuts, StoreCorruptions uint64
	// PeerFetches counts remote-tier lookups attempted (zero without
	// WithRemoteTier); PeerHits counts the ones that returned a signature.
	PeerFetches, PeerHits uint64
	// PoolCapacity is the worker-pool bound; PoolInFlight is how many pool
	// slots were held when the snapshot was taken.
	PoolCapacity, PoolInFlight int
	// Stages summarizes every recorded pipeline span (count, total and max
	// wall-clock seconds), sorted by stage name. Nil when observability is
	// disabled.
	Stages []StageSummary
}

// StageSummary aggregates the recorded occurrences of one pipeline stage.
type StageSummary = obs.SpanSummary

// Stats returns a snapshot of the engine's cumulative activity.
func (e *Engine) Stats() EngineStats {
	st := EngineStats{
		Predictions:  e.predictions.Value(),
		Studies:      e.studies.Value(),
		PoolCapacity: e.parallelism,
		PoolInFlight: len(e.sem),
		Stages:       e.reg.SpanSummaries(),
	}
	st.ProfileHits, st.ProfileBuilds = e.profiles.Stats()
	st.ProfileEvictions = e.profiles.Evictions()
	st.CollectionHits, st.Collections = e.sigs.Stats()
	st.SignatureEvictions = e.sigs.Evictions()
	st.ReuseHits, st.ReuseCollections = e.reuse.Stats()
	st.StoreHits = e.reg.Counter("store.hits").Value()
	st.StoreMisses = e.reg.Counter("store.misses").Value()
	st.StorePuts = e.reg.Counter("store.puts").Value()
	st.StoreCorruptions = e.reg.Counter("store.corruptions").Value()
	st.PeerFetches = e.peerFetches.Value()
	st.PeerHits = e.peerHits.Value()
	return st
}

// Registry returns the engine's observability registry (nil when disabled
// via WithRegistry(nil)). Serve Registry().Handler() to expose the
// engine's metrics over HTTP.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Err returns the engine's configuration error, if any. An engine built
// with invalid options (for example WithParallelism(0)) is inert: Err
// reports the problem and every pipeline method returns it.
func (e *Engine) Err() error { return e.confErr }

// usable gates every pipeline method: a misconfigured engine returns its
// configuration error, a closed one ErrEngineClosed.
func (e *Engine) usable() error {
	if e.confErr != nil {
		return e.confErr
	}
	if e.closed.Load() {
		return ErrEngineClosed
	}
	return nil
}

// Close releases the engine's long-lived resources: the collection worker
// arena is drained (its goroutines exit) and the persistent signature store,
// if any, is closed. Close is idempotent — further calls return the first
// call's result — and after it every pipeline method fails with
// ErrEngineClosed. Callers should let in-flight work finish (or cancel its
// contexts) before closing; collections racing a Close fail with
// pebil.ErrArenaClosed rather than corrupting state.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		e.closed.Store(true)
		if e.collector != nil {
			e.collector.Close()
		}
		if e.disk != nil {
			e.closeErr = e.disk.Close()
		}
	})
	return e.closeErr
}

// engineConfig accumulates functional options.
type engineConfig struct {
	parallelism int
	cacheSize   int
	collectOpt  CollectOptions
	model       CacheModel
	storeDir    string
	remote      RemoteTier
	registry    *obs.Registry
	regSet      bool
	err         error
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

// WithParallelism bounds the number of pipeline tasks (collections,
// predictions, study stages) the engine runs concurrently. n must be at
// least 1; zero and negative values are rejected — the engine is
// constructed but inert, with every method (and Err) returning an error
// wrapping ErrBadParallelism. Omit the option for the default of one worker
// per available CPU. The same bound sizes the engine's collection worker
// arena; CollectOptions.Workers further restricts how many of those workers
// a single collection may occupy.
func WithParallelism(n int) EngineOption {
	return func(c *engineConfig) {
		if n < 1 {
			if c.err == nil {
				c.err = fmt.Errorf("tracex: %w: WithParallelism(%d)", ErrBadParallelism, n)
			}
			return
		}
		c.parallelism = n
	}
}

// WithCacheSize sets how many machine profiles and application signatures
// the engine retains (each in its own LRU cache). Zero disables memoization
// — every request simulates — while still deduplicating identical in-flight
// work; negative means unbounded. The default is 64.
func WithCacheSize(n int) EngineOption {
	return func(c *engineConfig) { c.cacheSize = n }
}

// WithCollectOptions sets the collection options used when a caller passes
// the zero CollectOptions.
func WithCollectOptions(opt CollectOptions) EngineOption {
	return func(c *engineConfig) { c.collectOpt = opt }
}

// WithCacheModel sets the cache model used when a caller's collect options
// leave Model empty: ModelExact simulates the target hierarchy reference by
// reference, ModelAnalytical collects a machine-independent reuse-distance
// signature once and derives per-geometry hit rates from it analytically.
// An unknown model name leaves the engine inert with Err reporting it.
// Explicit CollectOptions.Model values always win over this default.
func WithCacheModel(m CacheModel) EngineOption {
	return func(c *engineConfig) {
		if _, err := pebil.ParseCacheModel(string(m)); err != nil {
			if c.err == nil {
				c.err = fmt.Errorf("tracex: %w", err)
			}
			return
		}
		c.model = m
	}
}

// WithStore attaches a persistent signature store rooted at dir (created
// with 0700 permissions if missing), making the engine's signature cache
// two-tiered: a collection request checks memory, then disk, then
// simulates, writing fresh results through both tiers. A restarted process
// pointed at the same directory warm-starts — its first repeated request
// is a disk hit instead of a re-collection. An unopenable directory does
// not panic: the engine is returned inert with Err reporting the problem.
// Machine profiles are not persisted; a MultiMAPS sweep is orders of
// magnitude cheaper than a signature collection.
func WithStore(dir string) EngineOption {
	return func(c *engineConfig) { c.storeDir = dir }
}

// WithRemoteTier inserts a remote signature source between the engine's
// disk tier and a fresh collection: a request that misses memory and disk
// asks the remote tier before simulating, and a successful fetch is served
// with Provenance "peer" and written through to the local disk store. The
// tier is strictly best-effort — any fetch error falls back to a local
// collection — and only applies to the exact-model path (analytical
// signatures are derived locally from the reuse profile in microseconds).
// Delegated requests disable the tier via ContextWithoutRemoteTier so two
// nodes with momentarily disagreeing ring views cannot delegate in a cycle.
func WithRemoteTier(rt RemoteTier) EngineOption {
	return func(c *engineConfig) { c.remote = rt }
}

// noRemoteTierKey marks a context whose work must not consult the remote
// tier.
type noRemoteTierKey struct{}

// ContextWithoutRemoteTier returns a context under which the engine
// collects strictly locally: the remote tier (WithRemoteTier) is skipped.
// The HTTP service applies it to delegated collection requests, breaking
// delegation cycles when fleet members briefly disagree on key ownership.
func ContextWithoutRemoteTier(ctx context.Context) context.Context {
	return context.WithValue(ctx, noRemoteTierKey{}, true)
}

// remoteTierDisabled reports whether ctx forbids remote-tier fetches.
func remoteTierDisabled(ctx context.Context) bool {
	on, _ := ctx.Value(noRemoteTierKey{}).(bool)
	return on
}

// WithRegistry sets the observability registry the engine and the pipeline
// stages beneath it record into. The default is a fresh registry per
// engine; pass a shared registry to aggregate several engines, or nil to
// disable metric collection entirely (instrumentation then costs one
// predicted branch per update).
func WithRegistry(r *obs.Registry) EngineOption {
	return func(c *engineConfig) { c.registry = r; c.regSet = true }
}

// NewEngine returns an Engine with the given options applied. Invalid
// options do not panic: the engine is returned inert with Err (and every
// method) reporting the first configuration error.
func NewEngine(opts ...EngineOption) *Engine {
	cfg := engineConfig{cacheSize: 64}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.parallelism <= 0 {
		cfg.parallelism = runtime.GOMAXPROCS(0)
	}
	if !cfg.regSet {
		cfg.registry = obs.New()
	}
	e := &Engine{
		parallelism: cfg.parallelism,
		collectOpt:  cfg.collectOpt,
		model:       cfg.model,
		confErr:     cfg.err,
		sem:         make(chan struct{}, cfg.parallelism),
		profiles:    memo.New[string, *Profile](cfg.cacheSize),
		sigs:        memo.New[sigKey, *Signature](cfg.cacheSize),
		reuse:       memo.New[reuseKey, *ReuseSignature](cfg.cacheSize),
		remote:      cfg.remote,
		reg:         cfg.registry,
		predictions: cfg.registry.Counter("engine.predictions"),
		studies:     cfg.registry.Counter("engine.studies"),
		putErrors:   cfg.registry.Counter("store.put_errors"),
		peerFetches: cfg.registry.Counter("engine.peer.fetches"),
		peerHits:    cfg.registry.Counter("engine.peer.hits"),
	}
	// The collection arena is shared by every collection the engine runs;
	// sizing it by the pool bound keeps total simulation concurrency at
	// parallelism even when several collections are in flight.
	col, err := pebil.NewCollector(pebil.WithWorkers(cfg.parallelism))
	if err != nil && e.confErr == nil {
		e.confErr = fmt.Errorf("tracex: %w", err)
	}
	e.collector = col
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir, cfg.registry)
		if err != nil && e.confErr == nil {
			e.confErr = fmt.Errorf("tracex: %w", err)
		}
		e.disk = st
	}
	// Pool and cache health as snapshot-time gauges: cheap to read, always
	// current, and visible on the HTTP endpoint without Engine.Stats.
	e.reg.GaugeFunc("engine.pool.capacity", func() float64 { return float64(e.parallelism) })
	e.reg.GaugeFunc("engine.pool.in_flight", func() float64 { return float64(len(e.sem)) })
	e.reg.GaugeFunc("engine.cache.profile.hits", func() float64 { h, _ := e.profiles.Stats(); return float64(h) })
	e.reg.GaugeFunc("engine.cache.profile.misses", func() float64 { _, m := e.profiles.Stats(); return float64(m) })
	e.reg.GaugeFunc("engine.cache.profile.evictions", func() float64 { return float64(e.profiles.Evictions()) })
	e.reg.GaugeFunc("engine.cache.signature.hits", func() float64 { h, _ := e.sigs.Stats(); return float64(h) })
	e.reg.GaugeFunc("engine.cache.signature.misses", func() float64 { _, m := e.sigs.Stats(); return float64(m) })
	e.reg.GaugeFunc("engine.cache.signature.evictions", func() float64 { return float64(e.sigs.Evictions()) })
	e.reg.GaugeFunc("engine.cache.reuse.hits", func() float64 { h, _ := e.reuse.Stats(); return float64(h) })
	e.reg.GaugeFunc("engine.cache.reuse.misses", func() float64 { _, m := e.reuse.Stats(); return float64(m) })
	e.reg.GaugeFunc("engine.cache.reuse.evictions", func() float64 { return float64(e.reuse.Evictions()) })
	return e
}

// defaultEngine backs the package-level convenience functions.
var defaultEngine struct {
	once sync.Once
	e    *Engine
}

// DefaultEngine returns the process-wide Engine behind the package-level
// convenience functions.
func DefaultEngine() *Engine {
	defaultEngine.once.Do(func() { defaultEngine.e = NewEngine() })
	return defaultEngine.e
}

// obsCtx threads the engine's registry to the pipeline stages below, so
// pebil/multimaps/psins/extrap metrics recorded during this engine's work
// land in this engine's registry rather than the process-wide default.
func (e *Engine) obsCtx(ctx context.Context) context.Context {
	return obs.Into(ctx, e.reg)
}

// fanOut runs n tasks across the engine's worker pool, returning the first
// error. A failure (or ctx cancellation) cancels the tasks that have not
// completed; fanOut returns only after every started task has finished.
func (e *Engine) fanOut(ctx context.Context, n int, task func(ctx context.Context, i int) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			select {
			case e.sem <- struct{}{}:
			case <-ctx.Done():
				errc <- ctx.Err()
				return
			}
			defer func() { <-e.sem }()
			errc <- task(ctx, i)
		}(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
			cancel() // stop the stragglers
		}
	}
	return first
}

// Profile returns the machine profile for cfg, running the MultiMAPS sweep
// on the first request and serving memoized results afterwards. Concurrent
// requests for the same configuration share one sweep.
func (e *Engine) Profile(ctx context.Context, cfg MachineConfig) (*Profile, error) {
	if err := e.usable(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctx = e.obsCtx(ctx)
	sp := e.reg.StartSpan("engine.profile", cfg.Name)
	defer sp.End()
	prof, _, err := e.profiles.Do(ctx, cfg.Fingerprint(), func() (*Profile, error) {
		return multimaps.Run(ctx, cfg, multimaps.DefaultOptions(cfg))
	})
	return prof, err
}

// CollectSignature traces the application at the given core count against
// the target machine, memoizing the result: a second identical request is
// served from cache with zero new simulation. A zero opt selects the
// engine's default collection options (WithCollectOptions).
func (e *Engine) CollectSignature(ctx context.Context, app *App, cores int, target MachineConfig, opt CollectOptions) (*Signature, error) {
	sig, _, err := e.CollectSignatureFrom(ctx, app, cores, target, opt)
	return sig, err
}

// CollectSignatureFrom is CollectSignature with provenance: it reports
// which tier satisfied the request — the in-memory cache, the persistent
// store (WithStore), a fleet peer (WithRemoteTier), or a fresh simulation.
// The tiers are checked in that order; a simulated signature is written
// through memory and disk on the way out, so the next identical request in
// this process is a memory hit and the next one in a restarted process is a
// disk hit. A peer fetch writes through to disk the same way, and any peer
// failure silently degrades to a local collection.
func (e *Engine) CollectSignatureFrom(ctx context.Context, app *App, cores int, target MachineConfig, opt CollectOptions) (*Signature, Provenance, error) {
	if err := e.usable(); err != nil {
		return nil, "", err
	}
	if app == nil {
		return nil, "", fmt.Errorf("tracex: nil application")
	}
	if opt == (CollectOptions{}) {
		opt = e.collectOpt
	}
	if opt.Model == "" {
		opt.Model = e.model
	}
	ctx = e.obsCtx(ctx)
	sp := e.reg.StartSpan("engine.collect", fmt.Sprintf("%s@%d", app.Name(), cores))
	defer sp.End()
	norm := opt.Normalized()
	key := sigKey{app: app.Name(), cores: cores, machine: target.Fingerprint(), opt: norm}
	// prov is written only inside the memoized function, which either
	// runs on this goroutine (miss) or not at all (hit) — never on
	// another goroutine — so the read below is race-free.
	prov := FromCollected
	sig, hit, err := e.sigs.Do(ctx, key, func() (*Signature, error) {
		if norm.Model == ModelAnalytical {
			// Analytical path: the expensive, persisted artifact is the
			// geometry-free reuse profile; the per-geometry signature is
			// derived from it in microseconds and only memoized, never
			// written to disk.
			rs, _, err := e.CollectReuse(ctx, app, cores, opt)
			if err != nil {
				return nil, err
			}
			prov = FromAnalytical
			return pebil.SignatureFromReuse(rs, app, target, nil, cache.Analytical{})
		}
		// Adaptive collections carry measurement uncertainty, which the
		// binary store codec does not persist; a disk round-trip would
		// silently drop it, so adaptive signatures stay in the memory and
		// peer tiers (peers exchange JSON, which carries it).
		useDisk := e.disk != nil && !norm.Sampling.IsAdaptive()
		if useDisk {
			if sig, ok, _ := e.disk.Get(StoreKey(app.Name(), cores, target, opt)); ok {
				prov = FromDisk
				return sig, nil
			}
		}
		if e.remote != nil && !remoteTierDisabled(ctx) {
			e.peerFetches.Inc()
			if sig, ferr := e.remote.FetchSignature(ctx, app.Name(), cores, target.Name, opt); ferr == nil && sig != nil {
				e.peerHits.Inc()
				prov = FromPeer
				if useDisk {
					if _, perr := e.disk.Put(sig, StoreKey(app.Name(), cores, target, opt)); perr != nil {
						e.putErrors.Inc()
					}
				}
				return sig, nil
			} else if ctx.Err() != nil {
				// A cancelled request must not mask the cancellation with
				// a fresh local collection.
				return nil, ctx.Err()
			}
			// Any other fetch failure (peer down, key unowned, not found)
			// degrades to a local collection below.
		}
		sig, err := e.collector.Collect(ctx, app, cores, target, nil, opt)
		if err == nil && useDisk {
			if _, perr := e.disk.Put(sig, StoreKey(app.Name(), cores, target, opt)); perr != nil {
				// A full or read-only disk must not fail the
				// collection that just succeeded; the lost write is
				// only a future cold start.
				e.putErrors.Inc()
			}
		}
		return sig, err
	})
	if err != nil {
		return nil, "", err
	}
	if hit {
		prov = FromMemory
	}
	return sig, prov, nil
}

// CollectReuse returns the machine-independent reuse-distance signature of
// the application at the given core count, with the same tiering as
// CollectSignatureFrom: in-memory memo, then the persistent store (the
// profile is keyed without any machine component — see ReuseStoreKey), then
// a fresh recording written through both tiers. The provenance reports the
// tier that satisfied the request. A zero opt selects the engine's default
// collection options; the options' Model and execution knobs do not affect
// the profile's identity.
func (e *Engine) CollectReuse(ctx context.Context, app *App, cores int, opt CollectOptions) (*ReuseSignature, Provenance, error) {
	if err := e.usable(); err != nil {
		return nil, "", err
	}
	if app == nil {
		return nil, "", fmt.Errorf("tracex: nil application")
	}
	if opt == (CollectOptions{}) {
		opt = e.collectOpt
	}
	ctx = e.obsCtx(ctx)
	sp := e.reg.StartSpan("engine.reuse", fmt.Sprintf("%s@%d", app.Name(), cores))
	defer sp.End()
	key := reuseKey{app: app.Name(), cores: cores, opt: reuseOpt(opt)}
	prov := FromCollected
	rs, hit, err := e.reuse.Do(ctx, key, func() (*ReuseSignature, error) {
		if e.disk != nil {
			if rs, ok, _ := e.disk.GetReuse(ReuseStoreKey(app.Name(), cores, opt)); ok {
				prov = FromDisk
				return rs, nil
			}
		}
		rs, err := e.collector.CollectReuse(ctx, app, cores, opt)
		if err == nil && e.disk != nil {
			if _, perr := e.disk.PutReuse(rs, ReuseStoreKey(app.Name(), cores, opt)); perr != nil {
				e.putErrors.Inc()
			}
		}
		return rs, err
	})
	if err != nil {
		return nil, "", err
	}
	if hit {
		prov = FromMemory
	}
	return rs, prov, nil
}

// Store returns the engine's persistent signature store, or nil when the
// engine was built without WithStore.
func (e *Engine) Store() *SignatureStore { return e.disk }

// CollectInputs traces the application at each of the given core counts —
// the "series of smaller core counts" the extrapolation consumes — fanning
// the collections out across the engine's worker pool.
func (e *Engine) CollectInputs(ctx context.Context, app *App, counts []int, target MachineConfig, opt CollectOptions) ([]*Signature, error) {
	if err := e.usable(); err != nil {
		return nil, err
	}
	out := make([]*Signature, len(counts))
	err := e.fanOut(ctx, len(counts), func(ctx context.Context, i int) error {
		sig, err := e.CollectSignature(ctx, app, counts[i], target, opt)
		if err != nil {
			return fmt.Errorf("tracex: collecting at %d cores: %w", counts[i], err)
		}
		out[i] = sig
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Extrapolate validates opt and fits canonical scaling forms to every
// feature-vector element of the dominant task across the input signatures,
// synthesizing the signature at targetCores.
func (e *Engine) Extrapolate(ctx context.Context, inputs []*Signature, targetCores int, opt ExtrapOptions) (*ExtrapResult, error) {
	if err := e.usable(); err != nil {
		return nil, err
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	return extrap.Extrapolate(e.obsCtx(ctx), inputs, targetCores, opt)
}

// PredictRequest describes one runtime prediction for Engine.Predict.
type PredictRequest struct {
	// Signature is the application signature to predict from (collected or
	// extrapolated). Required.
	Signature *Signature
	// App supplies the communication event trace. Required.
	App *App
	// Profile is the machine profile to convolve against. When nil, the
	// engine builds (and memoizes) the profile for Machine.
	Profile *Profile
	// Machine is the configuration to profile when Profile is nil; when
	// Machine is also nil, the signature's machine name is looked up among
	// the predefined configurations.
	Machine *MachineConfig
	// WithReplay attaches the full per-rank replay result to the returned
	// Prediction.
	WithReplay bool
	// WithTimeline attaches the per-rank segment timeline to the returned
	// Prediction. Memory grows with rank count × events — intended for
	// small-to-moderate replays.
	WithTimeline bool
	// Intervals attaches runtime prediction intervals to the returned
	// Prediction. It requires the signature to carry extrapolation
	// uncertainty (produced by ExtrapOptions.Intervals); predictions from
	// collected signatures have no posterior to propagate and return no
	// intervals.
	Intervals bool
	// IntervalLevels are the central interval levels to report; nil
	// selects DefaultIntervalLevels (50%, 90%, 95%). Values outside
	// (0, 1) are skipped.
	IntervalLevels []float64
}

// Predict produces the PMaC-framework runtime prediction for one request:
// the signature's dominant trace is convolved with the machine profile
// (Equation 1) and the resulting per-block times drive a replay of the
// application's communication event trace. The returned Prediction carries
// the replay result and timeline when requested. Predict replaces the
// Predict/PredictDetailed/PredictTimeline trio.
func (e *Engine) Predict(ctx context.Context, req PredictRequest) (*Prediction, error) {
	if err := e.usable(); err != nil {
		return nil, err
	}
	if req.Signature == nil {
		return nil, fmt.Errorf("tracex: predict request has no signature")
	}
	if req.App == nil {
		return nil, fmt.Errorf("tracex: predict request has no application")
	}
	ctx = e.obsCtx(ctx)
	sp := e.reg.StartSpan("engine.predict", fmt.Sprintf("%s@%d", req.Signature.App, req.Signature.CoreCount))
	defer sp.End()
	prof := req.Profile
	if prof == nil {
		cfg := req.Machine
		if cfg == nil {
			c, err := LoadMachine(req.Signature.Machine)
			if err != nil {
				return nil, err
			}
			cfg = &c
		}
		var err error
		prof, err = e.Profile(ctx, *cfg)
		if err != nil {
			return nil, err
		}
	}
	pred, err := predict(ctx, req.Signature, prof, req.App, predictDetail{
		withReplay:   req.WithReplay,
		withTimeline: req.WithTimeline,
		intervals:    req.Intervals,
		levels:       req.IntervalLevels,
	})
	if err != nil {
		return nil, err
	}
	if len(pred.Intervals) > 0 {
		e.reg.Counter("uncert.intervals").Inc()
	}
	e.predictions.Inc()
	return pred, nil
}

// PredictMany evaluates a batch of predictions across the engine's worker
// pool, returning results in request order. The first failure cancels the
// remaining requests.
func (e *Engine) PredictMany(ctx context.Context, reqs []PredictRequest) ([]*Prediction, error) {
	if err := e.usable(); err != nil {
		return nil, err
	}
	out := make([]*Prediction, len(reqs))
	err := e.fanOut(ctx, len(reqs), func(ctx context.Context, i int) error {
		pred, err := e.Predict(ctx, reqs[i])
		if err != nil {
			return fmt.Errorf("tracex: prediction %d: %w", i, err)
		}
		out[i] = pred
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Measure runs the detailed execution simulation of the application at the
// given core count on the target machine (the reproduction's ground truth).
func (e *Engine) Measure(ctx context.Context, app *App, cores int, target MachineConfig, opt CollectOptions) (*Prediction, error) {
	if err := e.usable(); err != nil {
		return nil, err
	}
	if opt == (CollectOptions{}) {
		opt = e.collectOpt
	}
	ctx = e.obsCtx(ctx)
	sp := e.reg.StartSpan("engine.measure", fmt.Sprintf("%s@%d", appName(app), cores))
	defer sp.End()
	return measure(ctx, e.collector, app, cores, target, opt)
}

// appName tolerates nil apps in span labels (the callee validates).
func appName(app *App) string {
	if app == nil {
		return "<nil>"
	}
	return app.Name()
}

// StudyRequest describes a full extrapolation study: collect signatures at
// a series of small core counts, extrapolate to one or more larger counts,
// and predict the large-scale runtimes.
type StudyRequest struct {
	// App is the proxy application. Required.
	App *App
	// Machine is the target system to profile and simulate.
	Machine MachineConfig
	// InputCounts are the core counts to trace (the paper uses three).
	InputCounts []int
	// TargetCores is the primary count to extrapolate to (beyond every
	// input).
	TargetCores int
	// TargetCounts optionally adds further extrapolation targets; the study
	// evaluates the sorted, deduplicated union of TargetCores and
	// TargetCounts, reusing the same input collections and machine profile
	// for every target.
	TargetCounts []int
	// Collect tunes signature collection; zero selects the engine default.
	Collect CollectOptions
	// Extrap tunes the extrapolation.
	Extrap ExtrapOptions
	// WithTruth additionally collects a signature at each target count and
	// predicts from it — the paper's Table I comparison baseline.
	WithTruth bool
	// Intervals runs the extrapolation with posterior model averaging and
	// attaches runtime prediction intervals to each target's extrapolated
	// prediction (and StudyRow). Point results are unchanged when false.
	Intervals bool
	// IntervalLevels are the central interval levels to report; nil
	// selects DefaultIntervalLevels (50%, 90%, 95%).
	IntervalLevels []float64
}

// targets resolves the request's target core counts: the sorted,
// deduplicated union of TargetCores and TargetCounts.
func (req *StudyRequest) targets() ([]int, error) {
	set := map[int]bool{}
	if req.TargetCores > 0 {
		set[req.TargetCores] = true
	}
	for _, t := range req.TargetCounts {
		if t <= 0 {
			return nil, fmt.Errorf("tracex: study target %d is not positive", t)
		}
		set[t] = true
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("tracex: study request has no target core count")
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out, nil
}

// StudyTarget is the full detail of one extrapolation target within a
// study.
type StudyTarget struct {
	// TargetCores is the extrapolated core count.
	TargetCores int
	// Extrapolation is the canonical-form fit and synthesized signature.
	Extrapolation *ExtrapResult
	// Extrapolated predicts the target-scale runtime from the synthesized
	// signature.
	Extrapolated *Prediction
	// Truth is the actually-collected target-scale signature and Collected
	// the prediction made from it (both nil unless StudyRequest.WithTruth).
	Truth     *Signature
	Collected *Prediction
}

// StudyRow is one per-target comparison row of a study: the paper's Table I
// shape with a stable JSON encoding (fixed field order, rows sorted by
// target core count).
type StudyRow struct {
	// TargetCores is the extrapolated core count.
	TargetCores int `json:"target_cores"`
	// PredictedSeconds is the runtime predicted from the extrapolated
	// signature.
	PredictedSeconds float64 `json:"predicted_seconds"`
	// ActualSeconds is the runtime predicted from the actually-collected
	// target-scale signature (0 unless the study ran WithTruth).
	ActualSeconds float64 `json:"actual_seconds"`
	// AbsRelErr is |predicted-actual|/actual (0 without truth).
	AbsRelErr float64 `json:"abs_rel_err"`
	// Intervals are the runtime prediction intervals on PredictedSeconds,
	// ascending by level (absent unless the study ran with
	// StudyRequest.Intervals).
	Intervals []Interval `json:"intervals,omitempty"`
}

// StudyResult is the product of an extrapolation study.
type StudyResult struct {
	// Profile is the machine profile the predictions convolved against.
	Profile *Profile
	// Inputs are the signatures collected at the small core counts.
	Inputs []*Signature
	// Targets holds the per-target results, ascending by core count.
	Targets []StudyTarget
}

// Target returns the per-target result for the given core count, or nil
// when the study did not evaluate it.
func (r *StudyResult) Target(cores int) *StudyTarget {
	for i := range r.Targets {
		if r.Targets[i].TargetCores == cores {
			return &r.Targets[i]
		}
	}
	return nil
}

// Rows returns the study's per-target comparison rows, sorted by target
// core count. The encoding/json form is stable: fixed field order and
// deterministic row order for equal results.
func (r *StudyResult) Rows() []StudyRow {
	rows := make([]StudyRow, 0, len(r.Targets))
	for _, t := range r.Targets {
		row := StudyRow{TargetCores: t.TargetCores}
		if t.Extrapolated != nil {
			row.PredictedSeconds = t.Extrapolated.Runtime
			row.Intervals = t.Extrapolated.Intervals
		}
		if t.Collected != nil {
			row.ActualSeconds = t.Collected.Runtime
			if row.ActualSeconds != 0 {
				row.AbsRelErr = abs(row.PredictedSeconds-row.ActualSeconds) / row.ActualSeconds
			}
		}
		rows = append(rows, row)
	}
	return rows
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Study runs a full extrapolation study: the machine profile, every input
// collection and (optionally) the per-target truth collections execute
// concurrently on the worker pool, then each target's extrapolation and
// predictions complete the pipeline (also fanned out across targets).
func (e *Engine) Study(ctx context.Context, req StudyRequest) (*StudyResult, error) {
	if err := e.usable(); err != nil {
		return nil, err
	}
	if req.App == nil {
		return nil, fmt.Errorf("tracex: study request has no application")
	}
	if len(req.InputCounts) == 0 {
		return nil, fmt.Errorf("tracex: study request has no input core counts")
	}
	targets, err := req.targets()
	if err != nil {
		return nil, err
	}
	if err := req.Extrap.Validate(); err != nil {
		return nil, err
	}
	if err := req.Machine.Validate(); err != nil {
		return nil, err
	}
	ctx = e.obsCtx(ctx)
	sp := e.reg.StartSpan("engine.study", fmt.Sprintf("%s→%v", req.App.Name(), targets))
	defer sp.End()

	res := &StudyResult{
		Inputs:  make([]*Signature, len(req.InputCounts)),
		Targets: make([]StudyTarget, len(targets)),
	}
	for i, t := range targets {
		res.Targets[i].TargetCores = t
	}
	// Phase 1 — every simulation is independent: one task per input count,
	// plus the profile sweep, plus one truth collection per target when
	// requested.
	n := len(req.InputCounts) + 1
	if req.WithTruth {
		n += len(targets)
	}
	err = e.fanOut(ctx, n, func(ctx context.Context, i int) error {
		switch {
		case i < len(req.InputCounts):
			sig, err := e.CollectSignature(ctx, req.App, req.InputCounts[i], req.Machine, req.Collect)
			if err != nil {
				return fmt.Errorf("tracex: collecting at %d cores: %w", req.InputCounts[i], err)
			}
			res.Inputs[i] = sig
			return nil
		case i == len(req.InputCounts):
			prof, err := e.Profile(ctx, req.Machine)
			if err != nil {
				return err
			}
			res.Profile = prof
			return nil
		default:
			t := &res.Targets[i-len(req.InputCounts)-1]
			sig, err := e.CollectSignature(ctx, req.App, t.TargetCores, req.Machine, req.Collect)
			if err != nil {
				return fmt.Errorf("tracex: collecting truth at %d cores: %w", t.TargetCores, err)
			}
			t.Truth = sig
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	// Phase 2 — per-target pipelines (fit, predict, optionally predict the
	// truth baseline) share the inputs and profile and run concurrently.
	err = e.fanOut(ctx, len(targets), func(ctx context.Context, i int) error {
		t := &res.Targets[i]
		exOpt := req.Extrap
		if req.Intervals {
			exOpt.Intervals = true
		}
		ext, err := e.Extrapolate(ctx, res.Inputs, t.TargetCores, exOpt)
		if err != nil {
			return err
		}
		t.Extrapolation = ext
		t.Extrapolated, err = e.Predict(ctx, PredictRequest{
			Signature: ext.Signature, App: req.App, Profile: res.Profile,
			Intervals: req.Intervals, IntervalLevels: req.IntervalLevels,
		})
		if err != nil {
			return err
		}
		if req.WithTruth {
			t.Collected, err = e.Predict(ctx, PredictRequest{
				Signature: t.Truth, App: req.App, Profile: res.Profile,
			})
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.studies.Inc()
	return res, nil
}

// predictDetail selects the optional extras of a prediction.
type predictDetail struct {
	withReplay, withTimeline bool
	// intervals propagates the signature's extrapolation uncertainty into
	// runtime prediction intervals at the given levels (nil = defaults).
	intervals bool
	levels    []float64
}

// predict is the shared prediction implementation: convolve the dominant
// trace with the profile, then replay the communication event trace with
// the convolved per-block costs.
func predict(ctx context.Context, sig *Signature, prof *Profile, app *App, detail predictDetail) (*Prediction, error) {
	withReplay, withTimeline := detail.withReplay, detail.withTimeline
	if sig.Machine != prof.Machine.Name {
		return nil, fmt.Errorf("tracex: %w: signature simulated %q but profile is for %q",
			ErrMachineMismatch, sig.Machine, prof.Machine.Name)
	}
	dom := sig.DominantTrace()
	if dom == nil {
		return nil, fmt.Errorf("tracex: %w", ErrNoTraces)
	}
	comp, err := psins.Convolve(dom, prof)
	if err != nil {
		return nil, err
	}
	prog, err := app.Program(sig.CoreCount)
	if err != nil {
		return nil, err
	}
	net, err := psins.NewNetwork(prof.Machine.Network)
	if err != nil {
		return nil, err
	}
	// Non-dominant ranks execute the same blocks scaled by their load
	// factor relative to the dominant rank (the paper scales every trace
	// file from the slowest task's prediction vector).
	domFactor := app.LoadFactor(dom.Rank)
	lf := func(rank int) float64 { return app.LoadFactor(rank) / domFactor }
	var tl *Timeline
	if withTimeline {
		tl = &Timeline{}
	}
	res, err := psins.ReplayTraced(ctx, prog, net, psins.CostFromComputation(comp, lf), tl)
	if err != nil {
		return nil, err
	}
	pred := &Prediction{
		App:            sig.App,
		CoreCount:      sig.CoreCount,
		Machine:        sig.Machine,
		Runtime:        res.Runtime,
		ComputeSeconds: res.ComputeTime[dom.Rank],
		CommSeconds:    res.CommTime[dom.Rank],
		MemSeconds:     comp.MemSeconds,
		FPSeconds:      comp.FPSeconds,
		Timeline:       tl,
	}
	if withReplay {
		pred.Replay = res
	}
	if detail.intervals && sig.Uncertainty != nil {
		ivs, err := runtimeIntervals(ctx, dom, sig.Uncertainty, prof, comp, prog, net, lf, detail.levels)
		if err != nil {
			return nil, fmt.Errorf("tracex: propagating prediction intervals: %w", err)
		}
		pred.Intervals = ivs
	}
	return pred, nil
}
