// Command multimaps runs the MultiMAPS memory benchmark against a machine's
// simulated memory system and writes the resulting machine profile (the
// bandwidth surface of Figure 1 plus machine rates) as JSON.
//
// Usage:
//
//	multimaps -machine bluewaters -out bluewaters.profile.json
//	multimaps -machine opteron2 -print
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"tracex/internal/machine"
	"tracex/internal/multimaps"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fatal(err)
	}
}

// run is the testable body of the command.
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("multimaps", flag.ContinueOnError)
	machineName := fs.String("machine", "bluewaters", "machine configuration (see 'tracex machines')")
	out := fs.String("out", "", "output profile path (JSON)")
	print := fs.Bool("print", false, "print the surface to stdout")
	refs := fs.Int("refs", 0, "references per probe (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := machine.ByName(*machineName)
	if err != nil {
		return err
	}
	opt := multimaps.DefaultOptions(cfg)
	if *refs > 0 {
		opt.RefsPerProbe = *refs
	}
	prof, err := multimaps.Run(ctx, cfg, opt)
	if err != nil {
		return err
	}
	if *out != "" {
		if err := machine.SaveProfile(prof, *out); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d surface points for %s to %s\n", len(prof.Surface), cfg.Name, *out)
	}
	if *print || *out == "" {
		fmt.Fprintf(w, "%-12s %-8s %-6s", "working_set", "stride", "mixed")
		for _, lv := range cfg.Caches {
			fmt.Fprintf(w, " %8s", lv.Name+" HR")
		}
		fmt.Fprintf(w, " %10s\n", "BW (GB/s)")
		for _, sp := range prof.Surface {
			stride := fmt.Sprintf("%d", sp.StrideBytes)
			if sp.StrideBytes == 0 && sp.ResidentFraction == 0 {
				stride = "rand"
			}
			mixed := "-"
			if sp.ResidentFraction > 0 {
				mixed = fmt.Sprintf("%.3f", sp.ResidentFraction)
			}
			fmt.Fprintf(w, "%-12d %-8s %-6s", sp.WorkingSetBytes, stride, mixed)
			for _, h := range sp.HitRates {
				fmt.Fprintf(w, " %7.2f%%", 100*h)
			}
			fmt.Fprintf(w, " %10.2f\n", sp.BandwidthGBs)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "multimaps: %v\n", err)
	os.Exit(1)
}
