package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"tracex/internal/machine"
)

func TestRunPrintsSurface(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-machine", "opteron2", "-refs", "20000"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "BW (GB/s)") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "rand") {
		t.Error("missing random probe rows")
	}
	if strings.Count(out, "\n") < 20 {
		t.Errorf("suspiciously few rows:\n%s", out)
	}
}

func TestRunWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prof.json")
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-machine", "opteron2", "-refs", "20000", "-out", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	prof, err := machine.LoadProfile(path)
	if err != nil {
		t.Fatalf("LoadProfile: %v", err)
	}
	if prof.Machine.Name != "opteron2" || len(prof.Surface) == 0 {
		t.Errorf("bad profile: %s, %d points", prof.Machine.Name, len(prof.Surface))
	}
}

func TestRunUnknownMachine(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-machine", "nope"}, &buf); err == nil {
		t.Error("unknown machine accepted")
	}
}
