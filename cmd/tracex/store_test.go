package main

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"tracex"
	"tracex/internal/trace"
)

// TestResolveStoreDir pins the XDG resolution chain: explicit flag wins,
// "off" disables, empty falls back to $XDG_CACHE_HOME then $HOME/.cache.
func TestResolveStoreDir(t *testing.T) {
	if dir, err := resolveStoreDir("off"); err != nil || dir != "" {
		t.Errorf(`resolveStoreDir("off") = %q, %v`, dir, err)
	}
	if dir, err := resolveStoreDir("/tmp/explicit"); err != nil || dir != "/tmp/explicit" {
		t.Errorf("explicit flag: %q, %v", dir, err)
	}
	t.Setenv("XDG_CACHE_HOME", "/tmp/xdgcache")
	if dir, err := resolveStoreDir(""); err != nil || dir != filepath.Join("/tmp/xdgcache", "tracex", "store") {
		t.Errorf("XDG default: %q, %v", dir, err)
	}
	t.Setenv("XDG_CACHE_HOME", "")
	t.Setenv("HOME", "/tmp/fakehome")
	dir, err := resolveStoreDir("")
	if err != nil || dir != filepath.Join("/tmp/fakehome", ".cache", "tracex", "store") {
		t.Errorf("HOME fallback: %q, %v", dir, err)
	}
}

// storeEng builds an engine persisting to its own temp store.
func storeEng(t *testing.T) (*tracex.Engine, string) {
	t.Helper()
	dir := t.TempDir()
	eng := tracex.NewEngine(tracex.WithStore(dir))
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	return eng, dir
}

// TestCmdStoreFlow drives the full CLI store surface: a collection lands
// in the store, export writes it out, import files it into a second
// store, and ls/gc report sensible state throughout.
func TestCmdStoreFlow(t *testing.T) {
	eng, _ := storeEng(t)
	app, err := tracex.LoadApp("stencil3d")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		t.Fatal(err)
	}
	sig, prov, err := eng.CollectSignatureFrom(bg, app, 64, cfg, tracex.CollectOptions{SampleRefs: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if prov != tracex.FromCollected {
		t.Fatalf("collection provenance %q", prov)
	}

	out := tmp(t, "exported.json")
	if err := cmdExport(eng, []string{"-key", "stencil3d@64@bluewaters", "-out", out}); err != nil {
		t.Fatalf("export: %v", err)
	}
	exported, err := trace.Load(out)
	if err != nil {
		t.Fatalf("loading exported signature: %v", err)
	}
	if !reflect.DeepEqual(sig, exported) {
		t.Error("exported signature differs from the collected one")
	}

	// Import into a second, empty store; ls shows the entry and the next
	// default-options collection warm-starts from it.
	eng2, _ := storeEng(t)
	if err := cmdImport(eng2, []string{"-in", out}); err != nil {
		t.Fatalf("import: %v", err)
	}
	if err := cmdStore(eng2, []string{"ls"}); err != nil {
		t.Fatalf("store ls: %v", err)
	}
	_, prov2, err := eng2.CollectSignatureFrom(bg, app, 64, cfg, tracex.CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prov2 != tracex.FromDisk {
		t.Errorf("post-import collection came from %q, want disk", prov2)
	}
	if err := cmdStore(eng2, []string{"gc"}); err != nil {
		t.Fatalf("store gc: %v", err)
	}
}

// TestCmdStoreValidation pins the CLI error surface.
func TestCmdStoreValidation(t *testing.T) {
	eng, _ := storeEng(t)
	if err := cmdExport(eng, []string{"-out", tmp(t, "x.json")}); err == nil {
		t.Error("export without -key/-hash succeeded")
	}
	if err := cmdExport(eng, []string{"-key", "not-a-key", "-out", tmp(t, "x.json")}); err == nil {
		t.Error("export with a malformed key succeeded")
	}
	if err := cmdExport(eng, []string{"-key", "nope@64@bluewaters", "-out", tmp(t, "x.json")}); err == nil {
		t.Error("export of a missing entry succeeded")
	}
	if err := cmdImport(eng, []string{}); err == nil {
		t.Error("import without -in succeeded")
	}
	if err := cmdStore(eng, []string{}); err == nil {
		t.Error("store without a subcommand succeeded")
	}
	if err := cmdStore(eng, []string{"prune"}); err == nil {
		t.Error("store with an unknown subcommand succeeded")
	}
	// A store-less engine names the situation.
	plain := tracex.NewEngine()
	if err := cmdStore(plain, []string{"ls"}); err == nil || !strings.Contains(err.Error(), "store") {
		t.Errorf("store-less engine error: %v", err)
	}
	// Importing a file that is not a loadable signature fails cleanly.
	p := tmp(t, "bad.json")
	if err := os.WriteFile(p, []byte(`{"app":"x","core_count":2,"machine":"not-a-machine"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := cmdImport(eng, []string{"-in", p}); err == nil {
		t.Error("import of an invalid signature file succeeded")
	}
}
