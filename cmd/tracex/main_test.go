package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracex"
	"tracex/internal/trace"
	"tracex/wire"
)

// testEng is shared across the CLI tests so repeated collections of the
// same (app, cores, machine, options) hit the engine cache.
var testEng = tracex.NewEngine()

// bg is shorthand for the tests' background context.
var bg = context.Background()

// The CLI subcommands are plain functions from argument slices to errors,
// so the whole tool surface is testable without spawning processes.

func tmp(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

// collectArgs builds a fast trace invocation.
func collectArgs(out string, cores int, extra ...string) []string {
	args := []string{
		"-app", "stencil3d", "-cores", fmt.Sprint(cores),
		"-machine", "bluewaters", "-out", out, "-sample", "30000",
	}
	return append(args, extra...)
}

func TestCmdTraceAndPredictFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline flow in -short mode")
	}
	dir := t.TempDir()
	paths := make([]string, 0, 3)
	for _, cores := range []int{64, 128, 256} {
		p := filepath.Join(dir, fmt.Sprintf("sig%d.json", cores))
		if err := cmdTrace(bg, testEng, collectArgs(p, cores)); err != nil {
			t.Fatalf("trace %d: %v", cores, err)
		}
		paths = append(paths, p)
	}
	out := filepath.Join(dir, "sig512.json")
	err := cmdExtrap(bg, testEng, []string{
		"-in", paths[0] + "," + paths[1] + "," + paths[2],
		"-target", "512", "-out", out,
	})
	if err != nil {
		t.Fatalf("extrap: %v", err)
	}
	sig, err := trace.Load(out)
	if err != nil {
		t.Fatalf("loading extrapolated signature: %v", err)
	}
	if sig.CoreCount != 512 {
		t.Errorf("extrapolated core count %d", sig.CoreCount)
	}
	if err := cmdPredict(bg, testEng, []string{"-sig", out, "-app", "stencil3d"}); err != nil {
		t.Fatalf("predict: %v", err)
	}
	// The -intervals flags thread uncertainty from extrap through predict.
	outIv := filepath.Join(dir, "sig512iv.json")
	err = cmdExtrap(bg, testEng, []string{
		"-in", paths[0] + "," + paths[1] + "," + paths[2],
		"-target", "512", "-out", outIv, "-intervals",
	})
	if err != nil {
		t.Fatalf("extrap -intervals: %v", err)
	}
	ivSig, err := trace.Load(outIv)
	if err != nil {
		t.Fatalf("loading interval signature: %v", err)
	}
	if ivSig.Uncertainty == nil {
		t.Fatal("extrap -intervals wrote a signature without uncertainty")
	}
	if err := cmdPredict(bg, testEng, []string{"-sig", outIv, "-app", "stencil3d", "-intervals"}); err != nil {
		t.Fatalf("predict -intervals: %v", err)
	}
	// Compare against a collected 512-core signature.
	real512 := filepath.Join(dir, "real512.json")
	if err := cmdTrace(bg, testEng, collectArgs(real512, 512)); err != nil {
		t.Fatalf("trace 512: %v", err)
	}
	if err := cmdCompare([]string{"-extrap", out, "-collected", real512}); err != nil {
		t.Fatalf("compare: %v", err)
	}
}

func TestCmdTracePerRankDirectory(t *testing.T) {
	dir := tmp(t, "sigdir")
	if err := cmdTrace(bg, testEng, collectArgs(dir, 64, "-perrank", "-binary")); err != nil {
		t.Fatalf("trace -perrank: %v", err)
	}
	if !trace.IsSignatureDir(dir) {
		t.Fatal("output is not a signature directory")
	}
	sig, err := loadSignature(dir)
	if err != nil {
		t.Fatalf("loadSignature(dir): %v", err)
	}
	if sig.CoreCount != 64 {
		t.Errorf("core count %d", sig.CoreCount)
	}
}

func TestCmdValidation(t *testing.T) {
	if err := cmdTrace(bg, testEng, []string{"-app", "stencil3d"}); err == nil {
		t.Error("trace without -cores/-out accepted")
	}
	if err := cmdTrace(bg, testEng, collectArgs(tmp(t, "x.json"), 64, "-app", "nope")); err == nil {
		t.Error("unknown app accepted")
	}
	if err := cmdExtrap(bg, testEng, []string{"-in", "only-one.json", "-target", "512", "-out", "x"}); err == nil {
		t.Error("single input accepted")
	}
	if err := cmdExtrap(bg, testEng, []string{"-in", "a.json,b.json", "-target", "512", "-out", tmp(t, "o.json")}); err == nil {
		t.Error("missing input files accepted")
	}
	if err := cmdPredict(bg, testEng, []string{"-app", "uh3d"}); err == nil {
		t.Error("predict without -sig accepted")
	}
	if err := cmdMeasure(bg, testEng, []string{"-app", "uh3d"}); err == nil {
		t.Error("measure without -cores accepted")
	}
	if err := cmdCompare([]string{"-extrap", "x"}); err == nil {
		t.Error("compare without -collected accepted")
	}
	if err := cmdReport(bg, testEng, []string{}); err == nil {
		t.Error("report without -app accepted")
	}
	if err := cmdReport(bg, testEng, []string{"-app", "stencil3d", "-counts", "abc"}); err == nil {
		t.Error("malformed counts accepted")
	}
}

func TestCmdMeasureSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("measure in -short mode")
	}
	if err := cmdMeasure(bg, testEng, []string{"-app", "stencil3d", "-cores", "64"}); err != nil {
		t.Fatalf("measure: %v", err)
	}
}

func TestCmdReportToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("report in -short mode")
	}
	out := tmp(t, "report.md")
	err := cmdReport(bg, testEng, []string{
		"-app", "stencil3d", "-counts", "64,128,256", "-target", "512",
		"-out", out, "-sample", "30000",
	})
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Trace extrapolation report",
		"## Runtime prediction",
		"## Influential-element audit",
		"## Energy",
	} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing section %q", want)
		}
	}
}

// TestCmdReportJSON checks -json emits the tracexd /v1/study wire body:
// scripted callers get the same shape from the CLI and the daemon.
func TestCmdReportJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("report in -short mode")
	}
	out := tmp(t, "study.json")
	err := cmdReport(bg, testEng, []string{
		"-app", "stencil3d", "-counts", "64,128,256", "-target", "512",
		"-out", out, "-sample", "30000", "-json",
	})
	if err != nil {
		t.Fatalf("report -json: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var sr wire.StudyResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatalf("decoding %s: %v", data, err)
	}
	if sr.App != "stencil3d" || sr.Machine != "bluewaters" || len(sr.Rows) == 0 {
		t.Errorf("study body incomplete: %+v", sr)
	}
	for _, row := range sr.Rows {
		if row.TargetCores <= 0 || row.PredictedSeconds <= 0 {
			t.Errorf("bad study row: %+v", row)
		}
	}
}

// TestCmdStatsWrapper runs a command under the stats wrapper and checks the
// printed snapshot carries the engine and pipeline metrics — including the
// reuse-profile tier counters.
func TestCmdStatsWrapper(t *testing.T) {
	eng := tracex.NewEngine()
	out := tmp(t, "sig.json")
	if err := cmdStats(bg, eng, append([]string{"trace"}, collectArgs(out, 64)...)); err != nil {
		t.Fatalf("stats trace: %v", err)
	}
	// A second collection under the analytical model exercises the
	// reuse-profile tier, so the reuse counters are provably nonzero.
	prevModel := collectModel
	collectModel = "analytical"
	if err := cmdTrace(bg, eng, collectArgs(tmp(t, "sig-analytical.json"), 64)); err != nil {
		collectModel = prevModel
		t.Fatalf("analytical trace: %v", err)
	}
	collectModel = prevModel
	var buf strings.Builder
	printStats(&buf, eng)
	text := buf.String()
	for _, want := range []string{
		"== engine stats ==",
		"2 collected",
		"engine.collect",
		"pebil.collect",
		"pebil.blocks",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("stats output missing %q:\n%s", want, text)
		}
	}
	st := eng.Stats()
	if st.ReuseCollections == 0 {
		t.Error("analytical collection recorded no reuse profiles")
	}
	reuseLine := fmt.Sprintf("reuse:      %d profiles recorded, %d memo hits", st.ReuseCollections, st.ReuseHits)
	if !strings.Contains(text, reuseLine) {
		t.Errorf("stats output missing reuse line %q:\n%s", reuseLine, text)
	}

	// Validation.
	if err := cmdStats(bg, eng, nil); err == nil {
		t.Error("stats without a wrapped command accepted")
	}
	if err := cmdStats(bg, eng, []string{"stats", "apps"}); err == nil {
		t.Error("stats wrapping itself accepted")
	}
	if err := cmdStats(bg, eng, []string{"bogus"}); err == nil {
		t.Error("stats wrapping an unknown command accepted")
	}
}

// TestServeMetrics hits the -metrics-addr HTTP endpoint and checks it
// serves the engine's JSON snapshot and then drains cleanly.
func TestServeMetrics(t *testing.T) {
	eng := tracex.NewEngine()
	if err := cmdTrace(bg, eng, collectArgs(tmp(t, "sig.json"), 64)); err != nil {
		t.Fatal(err)
	}
	srv, addr, err := serveMetrics(eng, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Shutdown(bg); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("endpoint served invalid JSON: %v\n%s", err, body)
	}
	names := map[string]bool{}
	for _, m := range snap.Metrics {
		names[m.Name] = true
	}
	for _, want := range []string{"pebil.blocks", "engine.pool.capacity"} {
		if !names[want] {
			t.Errorf("endpoint snapshot missing metric %q", want)
		}
	}
}

func TestReportScaleDefaults(t *testing.T) {
	counts, target, err := reportScale("uh3d", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if target != 8192 || len(counts) != 3 {
		t.Errorf("uh3d defaults: %v → %d", counts, target)
	}
	if _, _, err := reportScale("mystery", "", 0); err == nil {
		t.Error("unknown app without -counts accepted")
	}
	counts, target, err = reportScale("mystery", "10,20", 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 2 || target != 40 {
		t.Errorf("explicit scale: %v → %d", counts, target)
	}
}
