package main

import (
	"context"
	"fmt"
	"io"
	"os"

	"tracex"
)

// cmdStats wraps any other tracex command: it runs the wrapped command on
// the shared engine, then pretty-prints the engine's observability snapshot
// — cache effectiveness, worker-pool pressure, per-stage wall-clock and
// every pipeline metric — to stderr (so the wrapped command's stdout stays
// clean). The wrapped command's error is preserved; the snapshot prints
// either way, since a partial run's stats are exactly what a failed run
// leaves to debug with.
func cmdStats(ctx context.Context, eng *tracex.Engine, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("stats requires a command to wrap (e.g. 'tracex stats report -app uh3d')")
	}
	if args[0] == "stats" {
		return fmt.Errorf("stats cannot wrap itself")
	}
	handled, err := dispatch(ctx, eng, args[0], args[1:])
	if !handled {
		return fmt.Errorf("unknown command %q", args[0])
	}
	printStats(os.Stderr, eng)
	return err
}

// printStats renders the engine's stats snapshot and metric registry as a
// compact text report.
func printStats(w io.Writer, eng *tracex.Engine) {
	st := eng.Stats()
	fmt.Fprintf(w, "\n== engine stats ==\n")
	fmt.Fprintf(w, "profiles:   %d built, %d cache hits, %d evicted\n",
		st.ProfileBuilds, st.ProfileHits, st.ProfileEvictions)
	fmt.Fprintf(w, "signatures: %d collected, %d cache hits, %d evicted\n",
		st.Collections, st.CollectionHits, st.SignatureEvictions)
	fmt.Fprintf(w, "reuse:      %d profiles recorded, %d memo hits\n",
		st.ReuseCollections, st.ReuseHits)
	fmt.Fprintf(w, "work:       %d predictions, %d studies; pool %d/%d slots in use\n",
		st.Predictions, st.Studies, st.PoolInFlight, st.PoolCapacity)

	if len(st.Stages) > 0 {
		fmt.Fprintf(w, "\n%-20s %8s %12s %12s\n", "stage", "count", "total (s)", "max (s)")
		for _, s := range st.Stages {
			fmt.Fprintf(w, "%-20s %8d %12.4f %12.4f\n", s.Name, s.Count, s.TotalSeconds, s.MaxSeconds)
		}
	}

	reg := eng.Registry()
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	if len(snap.Metrics) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-36s %-10s %s\n", "metric", "type", "value")
	for _, m := range snap.Metrics {
		switch m.Type {
		case "histogram":
			fmt.Fprintf(w, "%-36s %-10s count=%d sum=%.6g\n", m.Name, m.Type, m.Count, m.Sum)
		case "counter":
			fmt.Fprintf(w, "%-36s %-10s %.0f\n", m.Name, m.Type, m.Value)
		default:
			fmt.Fprintf(w, "%-36s %-10s %.6g\n", m.Name, m.Type, m.Value)
		}
	}
}
