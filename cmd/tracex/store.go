package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tracex"
	"tracex/internal/trace"
)

// This file implements the CLI surface of the persistent signature store:
//
//	tracex export -key app@cores@machine [-hash hex] -out sig.json
//	tracex import -in sig.json
//	tracex store ls
//	tracex store gc
//
// The store location follows the XDG Base Directory convention: the global
// -store-dir flag wins, then $XDG_CACHE_HOME/tracex/store, then
// $HOME/.cache/tracex/store. `-store-dir off` runs without persistence.

// resolveStoreDir maps the -store-dir flag value to the store directory;
// "" selects the XDG default and "off" disables the store entirely.
func resolveStoreDir(flagVal string) (string, error) {
	switch flagVal {
	case "off":
		return "", nil
	case "":
		if dir := os.Getenv("XDG_CACHE_HOME"); dir != "" {
			return filepath.Join(dir, "tracex", "store"), nil
		}
		home, err := os.UserHomeDir()
		if err != nil {
			return "", fmt.Errorf("resolving the default store directory ($XDG_CACHE_HOME or $HOME/.cache/tracex/store): %w", err)
		}
		return filepath.Join(home, ".cache", "tracex", "store"), nil
	default:
		return flagVal, nil
	}
}

// engineStore returns the engine's persistent store, or a usage error when
// the run is store-less.
func engineStore(eng *tracex.Engine) (*tracex.SignatureStore, error) {
	if err := eng.Err(); err != nil {
		return nil, err
	}
	st := eng.Store()
	if st == nil {
		return nil, fmt.Errorf("no signature store (running with -store-dir off)")
	}
	return st, nil
}

// parseStoreKey splits "app@cores@machine" into its fields.
func parseStoreKey(key string) (app string, cores int, machineName string, err error) {
	parts := strings.Split(key, "@")
	if len(parts) != 3 {
		return "", 0, "", fmt.Errorf("store key %q is not app@cores@machine", key)
	}
	cores, err = strconv.Atoi(parts[1])
	if err != nil || cores <= 0 {
		return "", 0, "", fmt.Errorf("store key %q has a non-positive core count", key)
	}
	return parts[0], cores, parts[2], nil
}

// cmdExport copies one stored signature out of the store into a file.
func cmdExport(eng *tracex.Engine, args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	key := fs.String("key", "", "stored signature to export (app@cores@machine; most recent wins)")
	hash := fs.String("hash", "", "exact object content hash to export (overrides -key)")
	out := fs.String("out", "", "output signature path (.json or .bin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*key == "" && *hash == "") || *out == "" {
		return fmt.Errorf("export requires -key (or -hash) and -out")
	}
	st, err := engineStore(eng)
	if err != nil {
		return err
	}
	var sig *tracex.Signature
	switch {
	case *hash != "":
		if sig, err = st.GetHash(*hash); err != nil {
			return err
		}
	default:
		app, cores, machineName, err := parseStoreKey(*key)
		if err != nil {
			return err
		}
		found := false
		if sig, _, found, err = st.Latest(app, machineName, cores); err != nil {
			return err
		} else if !found {
			return fmt.Errorf("no stored signature for %s in %s", *key, st.Dir())
		}
	}
	if err := trace.Save(sig, *out); err != nil {
		return err
	}
	fmt.Printf("exported %s@%d@%s → %s\n", sig.App, sig.CoreCount, sig.Machine, *out)
	return nil
}

// cmdImport files a signature from disk into the store under its own
// identity, so later collections of the same (app, cores, machine)
// warm-start from it.
func cmdImport(eng *tracex.Engine, args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	in := fs.String("in", "", "signature path (.json/.bin, or a per-rank directory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("import requires -in")
	}
	st, err := engineStore(eng)
	if err != nil {
		return err
	}
	sig, err := loadSignature(*in)
	if err != nil {
		return err
	}
	cfg, err := tracex.LoadMachine(sig.Machine)
	if err != nil {
		return fmt.Errorf("signature names machine %q: %w", sig.Machine, err)
	}
	// Imports are filed under the default collection options — the identity
	// the engine's warm-start path consults.
	entry, err := st.Put(sig, tracex.StoreKey(sig.App, sig.CoreCount, cfg, tracex.CollectOptions{}))
	if err != nil {
		return err
	}
	fmt.Printf("imported %s@%d@%s (%d bytes) as %s\n",
		entry.App, entry.Cores, entry.Machine, entry.Bytes, entry.Hash)
	return nil
}

// cmdStore implements the store maintenance subcommands ls and gc.
func cmdStore(eng *tracex.Engine, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("store requires a subcommand: ls or gc")
	}
	st, err := engineStore(eng)
	if err != nil {
		return err
	}
	switch args[0] {
	case "ls":
		entries := st.Entries()
		if len(entries) == 0 {
			fmt.Printf("store %s is empty\n", st.Dir())
			return nil
		}
		fmt.Printf("%-12s %-14s %6s  %-12s %10s  %s\n", "APP", "MACHINE", "CORES", "HASH", "BYTES", "STORED")
		for _, e := range entries {
			fmt.Printf("%-12s %-14s %6d  %-12s %10d  %s\n",
				e.App, e.Machine, e.Cores, e.Hash[:12], e.Bytes,
				time.Unix(e.Unix, 0).UTC().Format(time.RFC3339))
		}
		return nil
	case "gc":
		stats, err := st.GC()
		if err != nil {
			return err
		}
		fmt.Printf("gc %s: %d live entries (%d bytes); removed %d objects (%d bytes), dropped %d entries, purged %d quarantined\n",
			st.Dir(), stats.LiveEntries, stats.LiveBytes,
			stats.RemovedObjects, stats.ReclaimedBytes,
			stats.DroppedEntries, stats.PurgedQuarantine)
		return nil
	default:
		return fmt.Errorf("unknown store subcommand %q (want ls or gc)", args[0])
	}
}
