// Command tracex drives the trace-extrapolation pipeline from the shell:
// collect application signatures at a series of core counts, extrapolate
// them to a larger count, predict runtime with the PMaC-style convolution
// and replay, and compare extrapolated traces against collected ones.
//
// Usage:
//
//	tracex trace   -app uh3d -cores 1024 -machine bluewaters -out sig1024.json
//	tracex extrap  -in sig1024.json,sig2048.json,sig4096.json -target 8192 -out sig8192.json
//	tracex predict -sig sig8192.json -app uh3d [-profile prof.json]
//	tracex measure -app uh3d -cores 8192 -machine bluewaters
//	tracex compare -extrap sig8192.json -collected real8192.json
//	tracex report  -app uh3d -out report.md
//	tracex stats   report -app uh3d -out report.md
//	tracex apps | machines
//
// All commands share one tracex.Engine, so a single invocation that needs
// the same signature or profile twice (report, notably) simulates it once.
// Interrupting the process (SIGINT/SIGTERM) cancels the running simulations
// promptly.
//
// Observability: `tracex stats <command> ...` runs any command and then
// pretty-prints the engine's metrics snapshot (cache effectiveness, stage
// timings, pipeline counters) to stderr, and the global `-metrics-addr`
// flag serves the live snapshot as JSON over HTTP for the duration of the
// run:
//
//	tracex -metrics-addr 127.0.0.1:9090 report -app specfem3d -out report.md
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tracex"
	"tracex/internal/extrap"
	"tracex/internal/machine"
	"tracex/internal/pebil"
	"tracex/internal/server"
	"tracex/internal/trace"
	"tracex/wire"
)

func main() {
	// os.Exit skips defers, so the exit code is computed in run(), where
	// the metrics endpoint's deferred drain can execute first.
	os.Exit(run())
}

func run() int {
	gfs := flag.NewFlagSet("tracex", flag.ExitOnError)
	gfs.Usage = usage
	metricsAddr := gfs.String("metrics-addr", "",
		"serve the engine's metrics snapshot as JSON on this address (host:port) while the command runs")
	storeDir := gfs.String("store-dir", "",
		"persistent signature store directory (default: $XDG_CACHE_HOME/tracex/store, else $HOME/.cache/tracex/store; \"off\" disables persistence)")
	gfs.IntVar(&collectWorkers, "collect-workers", 0,
		"worker goroutines per signature collection (0 = one per CPU); results are identical for any value")
	gfs.IntVar(&collectBatch, "collect-batch", 0,
		"addresses simulated per batch during collection (0 = default); results are identical for any value")
	gfs.StringVar(&collectModel, "cache-model", "",
		"cache model for signature collection: \"exact\" (default; simulates the target hierarchy) or \"analytical\" (derives hit rates from a machine-independent reuse-distance signature)")
	gfs.StringVar(&collectSampling, "sampling", "",
		"sampling policy for signature collection: \"fixed[:SAMPLE][,warm=N]\" (default) or \"adaptive[:RELERR][,pilot=N][,min=N][,max=N][,cluster=on|off]\" (per-block error bounds; see tracex.ParseSamplingPolicy)")
	_ = gfs.Parse(os.Args[1:]) // ExitOnError: Parse never returns an error
	rest := gfs.Args()
	if len(rest) == 0 {
		usage()
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	dir, err := resolveStoreDir(*storeDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracex: %s\n", err)
		return 1
	}
	var eopts []tracex.EngineOption
	if dir != "" {
		eopts = append(eopts, tracex.WithStore(dir))
	}
	eng := tracex.NewEngine(eopts...)
	// Drain the collection arena and release the store lock on the way out
	// (after the deferred metrics drain below, which registers later).
	defer eng.Close()
	if *metricsAddr != "" {
		srv, addr, err := serveMetrics(eng, *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracex: metrics endpoint: %s\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "tracex: serving metrics on http://%s/\n", addr)
		// Drain and close the endpoint before exit, whether the command
		// finished or a SIGINT/SIGTERM cancelled it: in-flight scrapes
		// complete against the final counter values instead of being cut
		// off mid-response.
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
	}
	handled, err := dispatch(ctx, eng, rest[0], rest[1:])
	if !handled {
		fmt.Fprintf(os.Stderr, "tracex: unknown command %q\n", rest[0])
		usage()
		return 2
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "tracex: interrupted")
			return 130
		}
		// Library errors already carry the "tracex: " package prefix.
		fmt.Fprintf(os.Stderr, "tracex: %s\n", strings.TrimPrefix(err.Error(), "tracex: "))
		return 1
	}
	return 0
}

// Global collection tuning, shared by every subcommand that simulates:
// -collect-workers and -collect-batch schedule the same collection
// differently without changing any result (pebil.CollectorConfig zeroes both
// out of cache and store identities); -cache-model selects how hit rates are
// produced.
var (
	collectWorkers, collectBatch  int
	collectModel, collectSampling string
)

// collectOptions builds a subcommand's collection options from the global
// tuning flags; sample ≤ 0 keeps the default per-block sample length. The
// model and sampling-policy names are validated here so a typo fails before
// any simulation; combining -sampling with a subcommand's -sample surfaces
// as the options' own conflict error.
func collectOptions(sample int) (tracex.CollectOptions, error) {
	m, err := pebil.ParseCacheModel(collectModel)
	if err != nil {
		return tracex.CollectOptions{}, err
	}
	pol, err := tracex.ParseSamplingPolicy(collectSampling)
	if err != nil {
		return tracex.CollectOptions{}, err
	}
	opt := tracex.CollectOptions{SampleRefs: sample, Workers: collectWorkers, BatchSize: collectBatch, Model: m, Sampling: pol}
	if err := opt.Validate(); err != nil {
		return tracex.CollectOptions{}, err
	}
	return opt, nil
}

// dispatch routes one subcommand to its implementation; handled reports
// whether cmd named a known command. The stats wrapper re-enters dispatch
// with the same engine so the wrapped command's activity is what it prints.
func dispatch(ctx context.Context, eng *tracex.Engine, cmd string, args []string) (handled bool, err error) {
	switch cmd {
	case "trace":
		return true, cmdTrace(ctx, eng, args)
	case "extrap":
		return true, cmdExtrap(ctx, eng, args)
	case "predict":
		return true, cmdPredict(ctx, eng, args)
	case "measure":
		return true, cmdMeasure(ctx, eng, args)
	case "compare":
		return true, cmdCompare(args)
	case "report":
		return true, cmdReport(ctx, eng, args)
	case "stats":
		return true, cmdStats(ctx, eng, args)
	case "export":
		return true, cmdExport(eng, args)
	case "import":
		return true, cmdImport(eng, args)
	case "store":
		return true, cmdStore(eng, args)
	case "apps":
		for _, a := range tracex.Apps() {
			fmt.Println(a)
		}
		return true, nil
	case "machines":
		for _, m := range tracex.Machines() {
			fmt.Println(m)
		}
		return true, nil
	case "-h", "--help", "help":
		usage()
		return true, nil
	}
	return false, nil
}

// serveMetrics starts the metrics endpoint on addr via the shared server
// lifecycle (the metrics snapshot answers "/" and "/metrics"; the full
// /v1 prediction API rides along on the same engine) and returns the
// server and its bound address (useful with port 0). Unlike the ad-hoc
// http.Serve this replaces, the returned server has a shutdown path: the
// caller drains it before exit.
func serveMetrics(eng *tracex.Engine, addr string) (*server.Server, string, error) {
	srv, err := server.New(server.Config{Engine: eng})
	if err != nil {
		return nil, "", err
	}
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound.String(), nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tracex [-metrics-addr host:port] [-store-dir dir|off]
              [-collect-workers n] [-collect-batch n]
              [-cache-model exact|analytical]
              [-sampling fixed:N|adaptive:RELERR] <command> [flags]

commands:
  trace    collect an application signature at one core count
  extrap   extrapolate signatures to a larger core count
  predict  predict runtime from a signature and a machine profile
  measure  run the detailed execution simulation (ground truth)
  compare  compare an extrapolated trace against a collected one
  report   run the full pipeline and write a markdown report
  stats    run any command, then print the engine's metrics snapshot
  export   copy a stored signature out of the persistent store
  import   file a signature into the persistent store
  store    persistent store maintenance: store ls | store gc
  apps     list available proxy applications
  machines list available machine configurations

signatures collected by trace/report persist in the signature store
($XDG_CACHE_HOME/tracex/store by default) and warm-start later runs.`)
}

// loadSignature reads a signature from a file (.json/.bin) or a per-rank
// signature directory.
func loadSignature(path string) (*tracex.Signature, error) {
	if trace.IsSignatureDir(path) {
		return trace.LoadDir(path)
	}
	return trace.Load(path)
}

func loadAppMachine(appName, machineName string) (*tracex.App, tracex.MachineConfig, error) {
	app, err := tracex.LoadApp(appName)
	if err != nil {
		return nil, tracex.MachineConfig{}, err
	}
	cfg, err := tracex.LoadMachine(machineName)
	if err != nil {
		return nil, tracex.MachineConfig{}, err
	}
	return app, cfg, nil
}

func cmdTrace(ctx context.Context, eng *tracex.Engine, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	appName := fs.String("app", "", "application name (see 'tracex apps')")
	cores := fs.Int("cores", 0, "core count to trace")
	machineName := fs.String("machine", "bluewaters", "target machine")
	out := fs.String("out", "", "output signature path (.json or .bin), or a directory with -perrank")
	sample := fs.Int("sample", 0, "per-block simulated references (0 = default)")
	perRank := fs.Bool("perrank", false, "write a signature directory with one trace file per rank (the paper's layout)")
	binary := fs.Bool("binary", false, "use the compact binary encoding for per-rank files")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" || *cores <= 0 || *out == "" {
		return fmt.Errorf("trace requires -app, -cores and -out")
	}
	app, cfg, err := loadAppMachine(*appName, *machineName)
	if err != nil {
		return err
	}
	opt, err := collectOptions(*sample)
	if err != nil {
		return err
	}
	sig, err := eng.CollectSignature(ctx, app, *cores, cfg, opt)
	if err != nil {
		return err
	}
	if *perRank {
		err = trace.SaveDir(sig, *out, *binary)
	} else {
		err = trace.Save(sig, *out)
	}
	if err != nil {
		return err
	}
	dom := sig.DominantTrace()
	fmt.Printf("traced %s at %d cores on %s: %d ranks, %d blocks, dominant rank %d → %s\n",
		sig.App, sig.CoreCount, sig.Machine, len(sig.Traces), len(dom.Blocks), dom.Rank, *out)
	return nil
}

func cmdExtrap(ctx context.Context, eng *tracex.Engine, args []string) error {
	fs := flag.NewFlagSet("extrap", flag.ExitOnError)
	in := fs.String("in", "", "comma-separated input signature paths")
	target := fs.Int("target", 0, "target core count")
	out := fs.String("out", "", "output signature path")
	extended := fs.Bool("extended", false, "include power and quadratic forms")
	intervals := fs.Bool("intervals", false, "attach model-averaging uncertainty to the output signature (enables prediction intervals downstream)")
	verbose := fs.Bool("v", false, "print per-element fits")
	if err := fs.Parse(args); err != nil {
		return err
	}
	paths := strings.Split(*in, ",")
	if *in == "" || len(paths) < 2 || *target <= 0 || *out == "" {
		return fmt.Errorf("extrap requires -in (≥2 paths), -target and -out")
	}
	var inputs []*tracex.Signature
	for _, p := range paths {
		sig, err := loadSignature(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		inputs = append(inputs, sig)
	}
	opt := tracex.ExtrapOptions{Intervals: *intervals}
	if *extended {
		opt.Forms = tracex.ExtendedForms()
	}
	res, err := eng.Extrapolate(ctx, inputs, *target, opt)
	if err != nil {
		return err
	}
	if err := trace.Save(res.Signature, *out); err != nil {
		return err
	}
	note := ""
	if res.Signature.Uncertainty != nil {
		note = " with uncertainty"
	}
	fmt.Printf("extrapolated %s to %d cores (%d blocks, %d fits%s) → %s\n",
		res.Signature.App, *target, len(res.Signature.Traces[0].Blocks), len(res.Fits), note, *out)
	if len(res.SkippedBlocks) > 0 {
		fmt.Printf("skipped blocks missing from some inputs: %v\n", res.SkippedBlocks)
	}
	if *verbose {
		for _, f := range res.Fits {
			fmt.Printf("  block %-4d %-18s %-12s → %.6g (R²=%.4f)\n",
				f.BlockID, f.Element, f.Form, f.Extrapolated, f.R2)
		}
	}
	return nil
}

func cmdPredict(ctx context.Context, eng *tracex.Engine, args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	sigPath := fs.String("sig", "", "signature path")
	appName := fs.String("app", "", "application (for the communication event trace)")
	profPath := fs.String("profile", "", "machine profile path (default: run MultiMAPS on the signature's machine)")
	intervals := fs.Bool("intervals", false, "print prediction intervals (requires a signature extrapolated with 'extrap -intervals')")
	jsonOut := fs.Bool("json", false, "emit the tracexd wire JSON body instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sigPath == "" || *appName == "" {
		return fmt.Errorf("predict requires -sig and -app")
	}
	sig, err := loadSignature(*sigPath)
	if err != nil {
		return err
	}
	app, err := tracex.LoadApp(*appName)
	if err != nil {
		return err
	}
	req := tracex.PredictRequest{Signature: sig, App: app, Intervals: *intervals}
	if *profPath != "" {
		req.Profile, err = machine.LoadProfile(*profPath)
		if err != nil {
			return err
		}
	}
	pred, err := eng.Predict(ctx, req)
	if err != nil {
		return err
	}
	if *jsonOut {
		// The signature was supplied by the caller, which is exactly the
		// server's "inline" provenance.
		return printPredictionJSON(pred, "inline")
	}
	printPrediction("predicted", pred)
	return nil
}

func cmdMeasure(ctx context.Context, eng *tracex.Engine, args []string) error {
	fs := flag.NewFlagSet("measure", flag.ExitOnError)
	appName := fs.String("app", "", "application name")
	cores := fs.Int("cores", 0, "core count")
	machineName := fs.String("machine", "bluewaters", "target machine")
	jsonOut := fs.Bool("json", false, "emit the tracexd wire JSON body instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" || *cores <= 0 {
		return fmt.Errorf("measure requires -app and -cores")
	}
	app, cfg, err := loadAppMachine(*appName, *machineName)
	if err != nil {
		return err
	}
	opt, err := collectOptions(0)
	if err != nil {
		return err
	}
	pred, err := eng.Measure(ctx, app, *cores, cfg, opt)
	if err != nil {
		return err
	}
	if *jsonOut {
		return printPredictionJSON(pred, "")
	}
	printPrediction("measured", pred)
	return nil
}

// printPredictionJSON writes p as the tracexd /v1/predict response body,
// through the same wire type and append encoder the server uses — the CLI
// and the daemon cannot drift apart on the JSON shape.
func printPredictionJSON(p *tracex.Prediction, from string) error {
	resp := wire.PredictionResponse(p)
	resp.From = from
	b := append(resp.AppendJSON(make([]byte, 0, 512)), '\n')
	_, err := os.Stdout.Write(b)
	return err
}

func printPrediction(kind string, p *tracex.Prediction) {
	fmt.Printf("%s runtime of %s at %d cores on %s: %.2f s\n",
		kind, p.App, p.CoreCount, p.Machine, p.Runtime)
	fmt.Printf("  dominant rank: compute %.2f s (mem %.2f s, fp %.2f s), comm %.2f s\n",
		p.ComputeSeconds, p.MemSeconds, p.FPSeconds, p.CommSeconds)
	for _, iv := range p.Intervals {
		fmt.Printf("  %2.0f%% interval: [%.2f, %.2f] s\n", 100*iv.Level, iv.Lo, iv.Hi)
	}
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	extrapPath := fs.String("extrap", "", "extrapolated signature path")
	collPath := fs.String("collected", "", "collected signature path")
	all := fs.Bool("all", false, "print every element (default: influential only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *extrapPath == "" || *collPath == "" {
		return fmt.Errorf("compare requires -extrap and -collected")
	}
	es, err := loadSignature(*extrapPath)
	if err != nil {
		return err
	}
	cs, err := loadSignature(*collPath)
	if err != nil {
		return err
	}
	errs, err := tracex.CompareTraces(&es.Traces[0], cs.DominantTrace())
	if err != nil {
		return err
	}
	shown := errs
	if !*all {
		shown = extrap.InfluentialErrors(errs)
	}
	fmt.Printf("%-24s %-18s %14s %14s %9s\n", "Block", "Element", "Extrapolated", "Collected", "AbsRelErr")
	for _, e := range shown {
		fmt.Printf("%-24s %-18s %14.6g %14.6g %8.2f%%\n",
			e.Func, e.Element, e.Extrapolated, e.Collected, 100*e.AbsRelErr)
	}
	fmt.Printf("max influential element error: %s\n",
		strconv.FormatFloat(100*extrap.MaxInfluentialError(errs), 'f', 2, 64)+"%")
	return nil
}
