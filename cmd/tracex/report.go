package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"tracex"
	"tracex/internal/extrap"
	"tracex/wire"
)

// cmdReport runs the complete analysis for one application — collect at a
// series of core counts, extrapolate, predict, measure, audit — and writes
// a self-contained markdown report. The whole pipeline is one Engine.Study
// (profile sweep, input collections and the target-scale truth collection
// all run concurrently on the engine's worker pool) plus the detailed
// execution simulation.
func cmdReport(ctx context.Context, eng *tracex.Engine, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	appName := fs.String("app", "", "application name")
	machineName := fs.String("machine", "bluewaters", "target machine")
	countsFlag := fs.String("counts", "", "comma-separated input core counts (default: the paper's for specfem3d/uh3d)")
	target := fs.Int("target", 0, "target core count (default: the paper's)")
	out := fs.String("out", "", "output markdown path (default: stdout)")
	sample := fs.Int("sample", 0, "per-block simulated references (0 = default)")
	energy := fs.Bool("energy", true, "include the energy/DVFS section")
	jsonOut := fs.Bool("json", false, "emit the study as the tracexd wire JSON body instead of markdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *appName == "" {
		return fmt.Errorf("report requires -app")
	}
	counts, targetCount, err := reportScale(*appName, *countsFlag, *target)
	if err != nil {
		return err
	}
	app, cfg, err := loadAppMachine(*appName, *machineName)
	if err != nil {
		return err
	}
	opt, err := collectOptions(*sample)
	if err != nil {
		return err
	}
	if *jsonOut {
		return writeStudyJSON(ctx, eng, *out, app, cfg, counts, targetCount, opt)
	}
	if *out == "" {
		return writeReport(ctx, eng, os.Stdout, app, cfg, counts, targetCount, opt, *energy)
	}
	// Buffer the report so an interrupted run leaves no partial file.
	var buf bytes.Buffer
	if err := writeReport(ctx, eng, &buf, app, cfg, counts, targetCount, opt, *energy); err != nil {
		return err
	}
	return os.WriteFile(*out, buf.Bytes(), 0o644)
}

// writeStudyJSON runs the report's study and emits it as the tracexd
// /v1/study response body — the same wire type and append encoder the
// server uses, so scripted callers parse one shape regardless of whether
// the study ran locally or against a daemon.
func writeStudyJSON(ctx context.Context, eng *tracex.Engine, out string,
	app *tracex.App, cfg tracex.MachineConfig,
	counts []int, targetCount int, opt tracex.CollectOptions) error {

	study, err := eng.Study(ctx, tracex.StudyRequest{
		App:         app,
		Machine:     cfg,
		InputCounts: counts,
		TargetCores: targetCount,
		Collect:     opt,
		WithTruth:   true,
	})
	if err != nil {
		return err
	}
	resp := &wire.StudyResponse{
		App:         app.Name(),
		Machine:     cfg.Name,
		InputCounts: counts,
		Rows:        study.Rows(),
	}
	b := append(resp.AppendJSON(make([]byte, 0, 1024)), '\n')
	if out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(out, b, 0o644)
}

// reportScale resolves the input/target core counts, defaulting to the
// paper's setup for the two headline applications.
func reportScale(appName, countsFlag string, target int) ([]int, int, error) {
	defaults := map[string]struct {
		counts []int
		target int
	}{
		"specfem3d":     {[]int{96, 384, 1536}, 6144},
		"uh3d":          {[]int{1024, 2048, 4096}, 8192},
		"stencil3d":     {[]int{64, 128, 256}, 1024},
		"stencil3dweak": {[]int{64, 128, 256}, 1024},
	}
	var counts []int
	if countsFlag != "" {
		for _, part := range strings.Split(countsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, 0, fmt.Errorf("bad core count %q", part)
			}
			counts = append(counts, n)
		}
	} else if d, ok := defaults[appName]; ok {
		counts = d.counts
	} else {
		return nil, 0, fmt.Errorf("no default counts for %q; pass -counts", appName)
	}
	if target == 0 {
		if d, ok := defaults[appName]; ok {
			target = d.target
		} else {
			return nil, 0, fmt.Errorf("no default target for %q; pass -target", appName)
		}
	}
	return counts, target, nil
}

func writeReport(ctx context.Context, eng *tracex.Engine, w io.Writer,
	app *tracex.App, cfg tracex.MachineConfig,
	counts []int, targetCount int, opt tracex.CollectOptions, includeEnergy bool) error {

	countStrs := make([]string, len(counts))
	for i, c := range counts {
		countStrs[i] = strconv.Itoa(c)
	}
	fmt.Fprintf(w, "# Trace extrapolation report: %s on %s\n\n", app.Name(), cfg.Name)
	fmt.Fprintf(w, "Input core counts %s, extrapolated to **%d** cores.\n\n",
		strings.Join(countStrs, "/"), targetCount)

	study, err := eng.Study(ctx, tracex.StudyRequest{
		App:         app,
		Machine:     cfg,
		InputCounts: counts,
		TargetCores: targetCount,
		Collect:     opt,
		WithTruth:   true,
	})
	if err != nil {
		return err
	}
	tgt := study.Target(targetCount)
	if tgt == nil {
		return fmt.Errorf("study produced no result for %d cores", targetCount)
	}
	prof, inputs, res := study.Profile, study.Inputs, tgt.Extrapolation
	predExtrap, predColl := tgt.Extrapolated, tgt.Collected
	measured, err := eng.Measure(ctx, app, targetCount, cfg, opt)
	if err != nil {
		return err
	}

	// Headline table.
	fmt.Fprintf(w, "## Runtime prediction (Table I style)\n\n")
	fmt.Fprintf(w, "| Trace | Predicted (s) | Measured (s) | Error |\n|---|---|---|---|\n")
	pct := func(x float64) string {
		return fmt.Sprintf("%.1f %%", 100*math.Abs(x-measured.Runtime)/measured.Runtime)
	}
	fmt.Fprintf(w, "| Extrapolated | %.2f | %.2f | %s |\n",
		predExtrap.Runtime, measured.Runtime, pct(predExtrap.Runtime))
	fmt.Fprintf(w, "| Collected | %.2f | %.2f | %s |\n\n",
		predColl.Runtime, measured.Runtime, pct(predColl.Runtime))

	// Selected forms per block (mem_ops as the representative element).
	fmt.Fprintf(w, "## Selected canonical forms (memory operations)\n\n")
	fmt.Fprintf(w, "| Block | Form | Extrapolated refs | R² |\n|---|---|---|---|\n")
	blocks := res.Signature.Traces[0].Blocks
	for _, blk := range blocks {
		fits := res.FitsFor(blk.ID)
		f := fits["mem_ops"]
		fmt.Fprintf(w, "| %s | %s | %.4g | %.4f |\n", blk.Func, f.Form, f.Extrapolated, f.R2)
	}
	fmt.Fprintln(w)

	// Element audit.
	errs, err := tracex.CompareTraces(&res.Signature.Traces[0], tgt.Truth.DominantTrace())
	if err != nil {
		return err
	}
	infl := extrap.InfluentialErrors(errs)
	sort.Slice(infl, func(i, j int) bool { return infl[i].AbsRelErr > infl[j].AbsRelErr })
	fmt.Fprintf(w, "## Influential-element audit (paper §IV: < 20 %%)\n\n")
	fmt.Fprintf(w, "Max error **%.1f %%** over %d influential elements. Worst five:\n\n",
		100*extrap.MaxInfluentialError(errs), len(infl))
	fmt.Fprintf(w, "| Block / element | Extrapolated | Collected | Error |\n|---|---|---|---|\n")
	for i, e := range infl {
		if i == 5 {
			break
		}
		fmt.Fprintf(w, "| %s/%s | %.5g | %.5g | %.2f %% |\n",
			e.Func, e.Element, e.Extrapolated, e.Collected, 100*e.AbsRelErr)
	}
	fmt.Fprintln(w)

	// Hit rates across counts for the dominant block.
	dom := res.Signature.Traces[0]
	hot := dom.Blocks[0]
	for i := range dom.Blocks {
		if dom.Blocks[i].FV.MemOps > hot.FV.MemOps {
			hot = dom.Blocks[i]
		}
	}
	fmt.Fprintf(w, "## Target-system cache residency of %s (Table II style)\n\n", hot.Func)
	fmt.Fprintf(w, "| Cores | Source |")
	for l := 1; l <= dom.Levels; l++ {
		fmt.Fprintf(w, " L%d |", l)
	}
	fmt.Fprintf(w, "\n|---|---|")
	fmt.Fprint(w, strings.Repeat("---|", dom.Levels), "\n")
	writeHR := func(cores int, src string, hr []float64) {
		fmt.Fprintf(w, "| %d | %s |", cores, src)
		for _, h := range hr {
			fmt.Fprintf(w, " %.1f %% |", 100*h)
		}
		fmt.Fprintln(w)
	}
	for _, sig := range inputs {
		if blk, ok := sig.DominantTrace().BlockByID()[hot.ID]; ok {
			writeHR(sig.CoreCount, "collected", blk.FV.HitRates)
		}
	}
	writeHR(targetCount, "extrapolated", hot.FV.HitRates)
	fmt.Fprintln(w)

	if includeEnergy {
		model := tracex.DefaultEnergyModel(cfg)
		rep, err := tracex.EstimateEnergy(res.Signature, prof, model)
		if err != nil {
			return err
		}
		pts, err := tracex.DVFSSweep(res.Signature, prof, model,
			[]float64{0.6, 0.8, 1.0, 1.2})
		if err != nil {
			return err
		}
		minE, minEDP := tracex.OptimalFrequency(pts)
		fmt.Fprintf(w, "## Energy (from the extrapolated trace)\n\n")
		fmt.Fprintf(w, "Dominant-task computation: %.1f s, %.1f J (%.1f W/core average).\n",
			rep.Seconds, rep.Joules, rep.AvgWatts)
		fmt.Fprintf(w, "Energy-optimal frequency %.1f×nominal; EDP-optimal %.1f×nominal.\n\n",
			minE.Scale, minEDP.Scale)
	}
	fmt.Fprintf(w, "---\nGenerated by `tracex report` (deterministic; machine model %q).\n", cfg.Name)
	return nil
}
