package main

import (
	"context"
	"io"
	"log"
	"net/http"
	"testing"
	"time"
)

func TestParseFlags(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != "127.0.0.1:8321" || o.cacheSize != 64 || o.queueWait != 2*time.Second ||
		o.retryAfter != time.Second || o.drain != 15*time.Second || o.noCoalesce || o.quiet {
		t.Errorf("defaults: %+v", o)
	}

	o, err = parseFlags([]string{
		"-addr", ":0", "-parallelism", "2", "-max-inflight", "3", "-max-queue", "5",
		"-queue-wait", "250ms", "-request-timeout", "30s", "-no-coalesce", "-quiet",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.addr != ":0" || o.parallelism != 2 || o.maxInFlight != 3 || o.maxQueue != 5 ||
		o.queueWait != 250*time.Millisecond || o.requestTimeout != 30*time.Second ||
		!o.noCoalesce || !o.quiet {
		t.Errorf("explicit flags: %+v", o)
	}

	if _, err := parseFlags([]string{"serve"}); err == nil {
		t.Error("positional argument accepted")
	}
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestParseFleetFlags(t *testing.T) {
	o, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.peers != "" || o.advertise != "" || o.shardMode != "fetch" ||
		o.peersPoll != 30*time.Second || o.noReplicate {
		t.Errorf("fleet defaults: %+v", o)
	}

	o, err = parseFlags([]string{
		"-peers", "http://a:1,http://b:2", "-advertise", "http://a:1",
		"-shard-mode", "redirect", "-peers-poll", "5s", "-no-replicate",
	})
	if err != nil {
		t.Fatal(err)
	}
	if o.peers != "http://a:1,http://b:2" || o.advertise != "http://a:1" ||
		o.shardMode != "redirect" || o.peersPoll != 5*time.Second || !o.noReplicate {
		t.Errorf("fleet flags: %+v", o)
	}

	if _, err := parseFlags([]string{"-peers", "http://a:1"}); err == nil {
		t.Error("-peers without -advertise accepted")
	}
}

// TestBuildFleet wires a two-node membership through build and checks the
// fleet reaches both the engine (remote tier) and the server (status route).
func TestBuildFleet(t *testing.T) {
	o, err := parseFlags([]string{
		"-quiet", "-peers", "http://a:1,http://b:2", "-advertise", "http://a:1",
	})
	if err != nil {
		t.Fatal(err)
	}
	logger := log.New(io.Discard, "", 0)
	srv, eng, flt, err := build(o, logger, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if flt == nil {
		t.Fatal("build returned nil fleet despite -peers")
	}
	if got := flt.Ring().Len(); got != 2 {
		t.Errorf("ring size = %d, want 2", got)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	resp, err := http.Get("http://" + addr.String() + "/v1/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("fleet status: %d", resp.StatusCode)
	}

	// A bad shard mode is a configuration error, caught before any socket.
	o2, err := parseFlags([]string{"-peers", "http://a:1", "-advertise", "http://a:1", "-shard-mode", "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := build(o2, logger, logger); err == nil {
		t.Error("bogus -shard-mode accepted")
	}
}

func TestBuildRejectsBadEngineConfig(t *testing.T) {
	o, err := parseFlags([]string{"-parallelism", "-3"})
	if err != nil {
		t.Fatal(err)
	}
	logger := log.New(io.Discard, "", 0)
	if _, _, _, err := build(o, logger, logger); err == nil {
		t.Error("negative -parallelism accepted")
	}
}

// TestBuildAndServe boots the daemon's server the way main does and hits
// one route end to end.
func TestBuildAndServe(t *testing.T) {
	o, err := parseFlags([]string{"-quiet"})
	if err != nil {
		t.Fatal(err)
	}
	logger := log.New(io.Discard, "", 0)
	srv, eng, _, err := build(o, logger, logger)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := eng.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	}()
	resp, err := http.Get("http://" + addr.String() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}
