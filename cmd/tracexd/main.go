// Command tracexd serves the trace-extrapolation pipeline as a long-lived
// HTTP JSON service: the deployment mode for extrapolation-based
// performance predictions at scale, as opposed to the one-shot tracex CLI.
//
//	tracexd -addr :8321
//
//	curl -s localhost:8321/v1/apps
//	curl -s localhost:8321/v1/predict -d '{"app":"stencil3d","cores":64,"machine":"bluewaters"}'
//	curl -s localhost:8321/v1/study -d '{"app":"stencil3d","machine":"bluewaters","input_counts":[64,128,256],"target_cores":1024}'
//	curl -s localhost:8321/metrics
//
// The daemon layers admission control (bounded in-flight work plus a
// bounded wait queue; overflow answers 429 with Retry-After), coalescing of
// identical concurrent predict/study requests, per-request deadlines, and
// structured JSON errors over one shared tracex.Engine, whose caches make
// repeated predictions cheap. SIGINT/SIGTERM trigger a graceful shutdown:
// the listener closes, /readyz flips to not-ready, in-flight requests drain
// (bounded by -drain), and the final metrics snapshot is logged.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tracex"
	"tracex/internal/fleet"
	"tracex/internal/obs"
	"tracex/internal/server"
)

// options collects every tracexd flag, separated from main for testing.
type options struct {
	addr           string
	parallelism    int
	cacheSize      int
	maxInFlight    int
	maxQueue       int
	queueWait      time.Duration
	requestTimeout time.Duration
	retryAfter     time.Duration
	drain          time.Duration
	noCoalesce     bool
	quiet          bool
	storeDir       string
	cacheModel     string
	sampling       string
	intervals      bool
	autoTune       bool
	autoTuneFloor  int
	tuneInterval   time.Duration
	storeReadCache int
	peers          string
	advertise      string
	shardMode      string
	peersPoll      time.Duration
	noReplicate    bool
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("tracexd", flag.ContinueOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8321", "listen address (host:port; port 0 picks a free port)")
	fs.IntVar(&o.parallelism, "parallelism", 0, "engine worker-pool bound (0 = one worker per CPU)")
	fs.IntVar(&o.cacheSize, "cache-size", 64, "profiles/signatures retained per LRU cache (0 disables retention, <0 unbounded)")
	fs.IntVar(&o.maxInFlight, "max-inflight", 0, "concurrently executing compute requests (0 = one per CPU)")
	fs.IntVar(&o.maxQueue, "max-queue", 0, "requests allowed to wait for a slot (0 = 4x max-inflight)")
	fs.DurationVar(&o.queueWait, "queue-wait", 2*time.Second, "longest a queued request waits before 429")
	fs.DurationVar(&o.requestTimeout, "request-timeout", 0, "per-request wall-clock cap (0 = none)")
	fs.DurationVar(&o.retryAfter, "retry-after", time.Second, "Retry-After advertised on 429 responses")
	fs.DurationVar(&o.drain, "drain", 15*time.Second, "longest Shutdown waits for in-flight requests")
	fs.BoolVar(&o.noCoalesce, "no-coalesce", false, "disable coalescing of identical in-flight predict/study requests")
	fs.BoolVar(&o.quiet, "quiet", false, "suppress the per-request access log")
	fs.StringVar(&o.storeDir, "store-dir", "", "persistent signature store directory; signatures survive restarts and GET/PUT /v1/signatures/{key} are served (empty = disabled)")
	fs.StringVar(&o.cacheModel, "cache-model", "", "default cache model for collections whose request omits \"model\": \"exact\" (default) or \"analytical\"")
	fs.StringVar(&o.sampling, "sampling", "", "default sampling policy for collections whose request omits \"sampling\": \"fixed[:SAMPLE][,warm=N]\" or \"adaptive[:RELERR][,pilot=N][,min=N][,max=N][,cluster=on|off]\"")
	fs.BoolVar(&o.intervals, "intervals", false, "attach prediction intervals when a request omits the \"intervals\" knob")
	fs.BoolVar(&o.autoTune, "auto-tune", false, "adjust the in-flight limit from the observed service-time EWMA (AIMD between -auto-tune-floor and -max-inflight)")
	fs.IntVar(&o.autoTuneFloor, "auto-tune-floor", 0, "smallest in-flight limit -auto-tune may shrink to (0 = max-inflight/4, at least 1)")
	fs.DurationVar(&o.tuneInterval, "tune-interval", 250*time.Millisecond, "minimum spacing between -auto-tune adjustments")
	fs.IntVar(&o.storeReadCache, "store-read-cache", 0, "marshalled signature-GET bodies retained (0 = default 256, <0 disables)")
	fs.StringVar(&o.peers, "peers", "", "fleet membership: comma-separated peer base URLs, or a file with one per line (reloaded on SIGHUP and every -peers-poll); empty = single node")
	fs.StringVar(&o.advertise, "advertise", "", "this node's base URL as peers reach it (its consistent-hash ring identity); required with -peers")
	fs.StringVar(&o.shardMode, "shard-mode", "fetch", "how remote-owned keys are served: \"fetch\" (delegate + fetch from the owner) or \"redirect\" (signature GETs answer 307 to the owner)")
	fs.DurationVar(&o.peersPoll, "peers-poll", 30*time.Second, "how often a -peers file is re-read for membership changes (0 disables polling; SIGHUP always reloads)")
	fs.BoolVar(&o.noReplicate, "no-replicate", false, "skip the startup warm-start pull of owned keys from peers")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if len(fs.Args()) != 0 {
		return nil, fmt.Errorf("tracexd takes no positional arguments, got %q", fs.Args())
	}
	if o.peers != "" && o.advertise == "" {
		return nil, fmt.Errorf("-peers requires -advertise (this node's URL as peers reach it)")
	}
	return o, nil
}

// build constructs the engine, server and (with -peers) the fleet for o.
// Configuration errors (e.g. a negative -parallelism) surface here, before
// any socket opens. The engine is returned alongside the server so main can
// Close it — releasing the collection arena and the store lock — after the
// server has drained; the fleet (nil on a single node) is returned so main
// can reload membership and run the warm-start replicator.
func build(o *options, accessLog, errorLog *log.Logger) (*server.Server, *tracex.Engine, *fleet.Fleet, error) {
	// One registry shared by the engine and the fleet, so /metrics shows
	// engine.*, pebil.* and fleet.* side by side.
	reg := obs.New()
	var flt *fleet.Fleet
	if o.peers != "" {
		peers, err := fleet.LoadPeers(o.peers)
		if err != nil {
			return nil, nil, nil, err
		}
		flt, err = fleet.New(fleet.Config{
			Self:     o.advertise,
			Peers:    peers,
			Mode:     o.shardMode,
			Registry: reg,
		})
		if err != nil {
			return nil, nil, nil, err
		}
	}
	eopts := []tracex.EngineOption{tracex.WithRegistry(reg)}
	if o.parallelism != 0 {
		eopts = append(eopts, tracex.WithParallelism(o.parallelism))
	}
	eopts = append(eopts, tracex.WithCacheSize(o.cacheSize))
	if o.storeDir != "" {
		eopts = append(eopts, tracex.WithStore(o.storeDir))
	}
	if flt != nil {
		eopts = append(eopts, tracex.WithRemoteTier(flt))
	}
	eng := tracex.NewEngine(eopts...)
	if err := eng.Err(); err != nil {
		return nil, nil, nil, err
	}
	if o.quiet {
		accessLog = nil
	}
	scfg := server.Config{
		Engine:            eng,
		MaxInFlight:       o.maxInFlight,
		MaxQueue:          o.maxQueue,
		QueueWait:         o.queueWait,
		RequestTimeout:    o.requestTimeout,
		RetryAfter:        o.retryAfter,
		DisableCoalescing: o.noCoalesce,
		DefaultCacheModel: o.cacheModel,
		DefaultSampling:   o.sampling,
		DefaultIntervals:  o.intervals,
		AutoTune:          o.autoTune,
		AutoTuneFloor:     o.autoTuneFloor,
		TuneInterval:      o.tuneInterval,
		StoreReadCache:    o.storeReadCache,
		AccessLog:         accessLog,
		ErrorLog:          errorLog,
	}
	if flt != nil {
		// Assigned conditionally: a typed nil in the interface field would
		// read as "fleet configured".
		scfg.Fleet = flt
	}
	srv, err := server.New(scfg)
	if err != nil {
		eng.Close()
		return nil, nil, nil, err
	}
	return srv, eng, flt, nil
}

// fleetLifecycle runs the fleet background work until ctx is cancelled:
// the one-shot warm-start replication pull (unless -no-replicate) and
// membership reloads, on SIGHUP and — when -peers names a file — on the
// -peers-poll ticker.
func fleetLifecycle(ctx context.Context, o *options, flt *fleet.Fleet, eng *tracex.Engine, logger *log.Logger) {
	if !o.noReplicate {
		go func() {
			pulled, err := flt.Replicate(ctx, eng)
			if err != nil {
				logger.Printf("fleet: warm-start replication pulled %d signatures, first error: %v", pulled, err)
			} else {
				logger.Printf("fleet: warm-start replication pulled %d signatures", pulled)
			}
		}()
	}
	sighup := make(chan os.Signal, 1)
	signal.Notify(sighup, syscall.SIGHUP)
	defer signal.Stop(sighup)
	var poll <-chan time.Time
	if o.peersPoll > 0 {
		t := time.NewTicker(o.peersPoll)
		defer t.Stop()
		poll = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-sighup:
		case <-poll:
		}
		peers, err := fleet.LoadPeers(o.peers)
		if err != nil {
			logger.Printf("fleet: reloading -peers %q: %v", o.peers, err)
			continue
		}
		if flt.SetPeers(peers) {
			logger.Printf("fleet: membership now %d peers, owned share %.3f", flt.Ring().Len(), flt.OwnedShare())
		}
	}
}

func main() {
	logger := log.New(os.Stderr, "tracexd: ", log.LstdFlags|log.Lmicroseconds)
	o, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	srv, eng, flt, err := build(o, logger, logger)
	if err != nil {
		logger.Printf("configuration: %v", err)
		os.Exit(1)
	}
	addr, err := srv.Start(o.addr)
	if err != nil {
		logger.Printf("listen: %v", err)
		os.Exit(1)
	}
	logger.Printf("serving on http://%s (routes: /v1/{predict,study,extrapolate,signatures,apps,machines}, /healthz, /readyz, /metrics)", addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if flt != nil {
		logger.Printf("fleet: %d peers, self %s, shard mode %s", flt.Ring().Len(), flt.Self(), flt.Mode())
		go fleetLifecycle(ctx, o, flt, eng, logger)
	}
	<-ctx.Done()
	stop() // restore default handling: a second signal kills immediately
	logger.Printf("signal received; draining (up to %s)", o.drain)
	dctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Printf("shutdown: %v", err)
		eng.Close()
		os.Exit(1)
	}
	// Release the engine only after the drain: in-flight requests may still
	// be collecting on its arena until Shutdown returns.
	if err := eng.Close(); err != nil {
		logger.Printf("engine close: %v", err)
		os.Exit(1)
	}
	logger.Printf("drained cleanly")
}
