// Command psins replays an application's MPI event trace against a target
// machine, reporting the predicted runtime and its per-rank decomposition —
// the role of the PSiNS simulator in the PMaC framework. The compute cost of
// each event comes from convolving a supplied (or freshly collected)
// signature with the machine profile.
//
// Usage:
//
//	psins -app uh3d -cores 2048 -machine bluewaters
//	psins -app uh3d -cores 8192 -machine bluewaters -sig extrapolated.json -ranks 8
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"tracex"
	"tracex/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fatal(err)
	}
}

// run is the testable body of the command.
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("psins", flag.ContinueOnError)
	appName := fs.String("app", "", "application name")
	cores := fs.Int("cores", 0, "core count to replay")
	machineName := fs.String("machine", "bluewaters", "target machine")
	sigPath := fs.String("sig", "", "signature path (default: collect one now)")
	topN := fs.Int("ranks", 4, "number of slowest ranks to list")
	sample := fs.Int("sample", 0, "per-block simulated references (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *appName == "" || *cores <= 0 {
		return fmt.Errorf("-app and -cores are required")
	}
	app, err := tracex.LoadApp(*appName)
	if err != nil {
		return err
	}
	cfg, err := tracex.LoadMachine(*machineName)
	if err != nil {
		return err
	}
	eng := tracex.NewEngine()
	var sig *tracex.Signature
	if *sigPath != "" {
		sig, err = trace.Load(*sigPath)
		if err != nil {
			return err
		}
		if sig.CoreCount != *cores {
			return fmt.Errorf("signature is for %d cores, replay requested %d", sig.CoreCount, *cores)
		}
	} else {
		sig, err = eng.CollectSignature(ctx, app, *cores, cfg, tracex.CollectOptions{SampleRefs: *sample})
		if err != nil {
			return err
		}
	}
	pred, err := eng.Predict(ctx, tracex.PredictRequest{
		Signature: sig, App: app, Machine: &cfg, WithReplay: true,
	})
	if err != nil {
		return err
	}
	replay := pred.Replay
	prog, err := tracex.Program(app, *cores)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replayed %s at %d cores on %s\n", app.Name(), *cores, cfg.Name)
	fmt.Fprintf(w, "  predicted runtime: %.2f s\n", pred.Runtime)
	fmt.Fprintf(w, "  dominant rank: compute %.2f s (mem %.2f, fp %.2f), comm %.2f s\n",
		pred.ComputeSeconds, pred.MemSeconds, pred.FPSeconds, pred.CommSeconds)
	fmt.Fprintf(w, "  point-to-point messages: %d (%.1f MB total)\n",
		prog.TotalMessages(), float64(prog.TotalBytes())/1e6)
	// Per-class load summary.
	type cls struct {
		rank int
		f    float64
	}
	var classes []cls
	seen := map[int]bool{}
	for r := 0; r < *cores && len(classes) < app.NumClasses(); r++ {
		c := app.ClassOf(r)
		if !seen[c] {
			seen[c] = true
			classes = append(classes, cls{r, app.LoadFactor(r)})
		}
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].f > classes[j].f })
	fmt.Fprintf(w, "  load classes (%d):", len(classes))
	for _, c := range classes {
		fmt.Fprintf(w, " rank%d×%.2f", c.rank, c.f)
	}
	fmt.Fprintln(w)
	// Slowest ranks by finish time.
	type rankEnd struct {
		rank int
		end  float64
	}
	ends := make([]rankEnd, len(replay.RankEnd))
	for r, e := range replay.RankEnd {
		ends[r] = rankEnd{r, e}
	}
	sort.Slice(ends, func(i, j int) bool { return ends[i].end > ends[j].end })
	if *topN > len(ends) {
		*topN = len(ends)
	}
	fmt.Fprintf(w, "  slowest %d ranks:\n", *topN)
	for _, re := range ends[:*topN] {
		fmt.Fprintf(w, "    rank %6d: end %.2f s (compute %.2f, comm %.2f)\n",
			re.rank, re.end, replay.ComputeTime[re.rank], replay.CommTime[re.rank])
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psins: %v\n", err)
	os.Exit(1)
}
