package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func TestRunReplaysApplication(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(), []string{"-app", "stencil3d", "-cores", "64", "-sample", "30000"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"replayed stencil3d at 64 cores",
		"predicted runtime",
		"point-to-point messages",
		"slowest 4 ranks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-app", "stencil3d"}, &buf); err == nil {
		t.Error("missing -cores accepted")
	}
	if err := run(context.Background(), []string{"-app", "nope", "-cores", "64"}, &buf); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run(context.Background(), []string{"-app", "stencil3d", "-cores", "64", "-sig", "/no/such.json"}, &buf); err == nil {
		t.Error("missing signature accepted")
	}
}
