package main

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("predict=6,get=3,put=1,study=0")
	if err != nil {
		t.Fatal(err)
	}
	if m.Weights != [numOps]int{6, 3, 1, 0} || m.total != 10 {
		t.Errorf("parsed %+v", m)
	}
	if got := m.String(); got != "predict=6,get=3,put=1" {
		t.Errorf("String() = %q", got)
	}
	for _, bad := range []string{"", "predict", "predict=-1", "collectall=2", "predict=0,get=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestMixPickDistribution(t *testing.T) {
	m, err := parseMix("predict=3,get=1")
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(1, 2))
	var counts [numOps]int
	for i := 0; i < 4000; i++ {
		counts[m.pick(r)]++
	}
	if counts[opPut] != 0 || counts[opStudy] != 0 {
		t.Errorf("zero-weight operations drawn: %v", counts)
	}
	// predict should land near 3/4 of draws.
	if frac := float64(counts[opPredict]) / 4000; frac < 0.70 || frac > 0.80 {
		t.Errorf("predict fraction %.3f, want ≈0.75", frac)
	}
}

func TestParseDeadlines(t *testing.T) {
	cases := []struct {
		in   string
		want DeadlineDist
	}{
		{"none", DeadlineDist{Kind: "none"}},
		{"", DeadlineDist{Kind: "none"}},
		{"fixed:200ms", DeadlineDist{Kind: "fixed", Base: 200 * time.Millisecond}},
		{"exp:1s", DeadlineDist{Kind: "exp", Base: time.Second}},
		{"uniform:50ms-500ms", DeadlineDist{Kind: "uniform", Min: 50 * time.Millisecond, Max: 500 * time.Millisecond}},
	}
	for _, c := range cases {
		got, err := parseDeadlines(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseDeadlines(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"fixed", "fixed:0s", "uniform:500ms-50ms", "gauss:1s", "exp:-1s"} {
		if _, err := parseDeadlines(bad); err == nil {
			t.Errorf("parseDeadlines(%q) accepted", bad)
		}
	}

	// Draws respect their bounds.
	r := rand.New(rand.NewPCG(3, 4))
	uni := DeadlineDist{Kind: "uniform", Min: 50 * time.Millisecond, Max: 500 * time.Millisecond}
	for i := 0; i < 1000; i++ {
		if d := uni.draw(r); d < uni.Min || d > uni.Max {
			t.Fatalf("uniform draw %v outside [%v, %v]", d, uni.Min, uni.Max)
		}
	}
	if d := (DeadlineDist{Kind: "none"}).draw(r); d != 0 {
		t.Errorf("none draw = %v, want 0", d)
	}
	if d := (DeadlineDist{Kind: "fixed", Base: time.Second}).draw(r); d != time.Second {
		t.Errorf("fixed draw = %v", d)
	}
}

// TestKeyPickerZipf checks the skewed picker concentrates mass on low
// indices while the uniform picker does not.
func TestKeyPickerZipf(t *testing.T) {
	const keys, draws = 64, 20000
	r := rand.New(rand.NewPCG(5, 6))
	zipf := newKeyPicker(r, keys, 1.3)
	uniform := newKeyPicker(r, keys, 0)
	zipfHot, uniHot := 0, 0
	for i := 0; i < draws; i++ {
		if k := zipf.pick(r); k < keys/8 {
			zipfHot++
		}
		if k := uniform.pick(r); k < keys/8 {
			uniHot++
		}
		if k := zipf.pick(r); k < 0 || k >= keys {
			t.Fatalf("zipf pick %d outside [0, %d)", k, keys)
		}
	}
	if frac := float64(zipfHot) / draws; frac < 0.5 {
		t.Errorf("zipf put only %.2f of draws on the hottest eighth", frac)
	}
	if frac := float64(uniHot) / draws; frac < 0.08 || frac > 0.18 {
		t.Errorf("uniform hot fraction %.3f, want ≈0.125", frac)
	}
}

func TestLoadConfigValidate(t *testing.T) {
	good := LoadConfig{
		Targets: []string{"http://x"}, Duration: 2 * time.Second, Warmup: time.Second,
		Workers: 4, Keys: 8, Mix: Mix{Weights: [numOps]int{1}, total: 1},
	}
	if err := good.validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []LoadConfig{
		{}, // no address
		func(c LoadConfig) LoadConfig { c.Targets = []string{"http://x", ""}; return c }(good), // empty target
		func(c LoadConfig) LoadConfig { c.Warmup = 3 * time.Second; return c }(good),           // warmup >= duration
		func(c LoadConfig) LoadConfig { c.Workers = 0; return c }(good),                        // no workers
		func(c LoadConfig) LoadConfig { c.Keys = 0; return c }(good),                           // no keys
		func(c LoadConfig) LoadConfig { c.Keys = loadMaxKeys + 1; return c }(good),             // key space overflow
		func(c LoadConfig) LoadConfig { c.Zipf = 0.9; return c }(good),                         // zipf s must exceed 1
		func(c LoadConfig) LoadConfig { c.Rate = -1; return c }(good),                          // negative rate
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestWriteBenchFileMerges(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := writeBenchFile(path, "uniform", &Report{Requests: 10}); err != nil {
		t.Fatal(err)
	}
	if err := writeBenchFile(path, "zipf", &Report{Requests: 20}); err != nil {
		t.Fatal(err)
	}
	// Re-recording a label overwrites only that label.
	if err := writeBenchFile(path, "uniform", &Report{Requests: 30}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		t.Fatal(err)
	}
	if bf.Benchmark != "tracexd-serving" || bf.UpdatedUnix == 0 {
		t.Errorf("header %+v", bf)
	}
	if len(bf.Runs) != 2 || bf.Runs["uniform"].Requests != 30 || bf.Runs["zipf"].Requests != 20 {
		t.Errorf("runs %+v", bf.Runs)
	}
}

// TestLoadSmoke is the in-Go equivalent of `make bench-serve-smoke`: a
// short low-rate run against an in-process daemon must finish with real
// throughput and no server errors.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke in -short mode")
	}
	base, shutdown, err := startInProcess(t.TempDir(), 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()
	mix, err := parseMix("predict=6,get=3,put=1")
	if err != nil {
		t.Fatal(err)
	}
	duration, warmup, deadline := 2*time.Second, 500*time.Millisecond, 2*time.Second
	if raceEnabled {
		// The race detector slows the simulation hot loops by an order of
		// magnitude; give the measurement window room to record every
		// operation kind.
		duration, warmup, deadline = 6*time.Second, time.Second, 10*time.Second
	}
	rep, err := runLoad(context.Background(), LoadConfig{
		Targets:  []string{base},
		Duration: duration, Warmup: warmup,
		Rate: 200, Workers: 32, Mix: mix, Keys: 4,
		Deadline:   DeadlineDist{Kind: "fixed", Base: deadline},
		SampleRefs: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.ThroughputRPS == 0 {
		t.Fatalf("no measured throughput: %+v", rep)
	}
	if rep.Status["5xx"] != 0 || rep.Status["error"] != 0 {
		t.Fatalf("server-side failures under light load: %v", rep.Status)
	}
	if rep.Overall.P50Ms <= 0 || rep.Overall.P999Ms < rep.Overall.P50Ms {
		t.Errorf("implausible quantiles: %+v", rep.Overall)
	}
	if pr, ok := rep.Ops["predict"]; !ok || pr.Count == 0 {
		t.Errorf("predict operation unrecorded: %+v", rep.Ops)
	}
}

// TestLoadMultiTarget drives two in-process daemons through -targets style
// round-robin: the run must seed both nodes (collect once, PUT everywhere)
// and finish without server errors on either.
func TestLoadMultiTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-target load smoke in -short mode")
	}
	var targets []string
	for i := 0; i < 2; i++ {
		base, shutdown, err := startInProcess(t.TempDir(), 0, false)
		if err != nil {
			t.Fatal(err)
		}
		defer shutdown()
		targets = append(targets, base)
	}
	mix, err := parseMix("predict=3,get=3")
	if err != nil {
		t.Fatal(err)
	}
	duration, warmup := 2*time.Second, 500*time.Millisecond
	if raceEnabled {
		duration, warmup = 6*time.Second, time.Second
	}
	rep, err := runLoad(context.Background(), LoadConfig{
		Targets:  targets,
		Duration: duration, Warmup: warmup,
		Workers: 4, Mix: mix, Keys: 2,
		SampleRefs: 2000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Status["5xx"] != 0 || rep.Status["error"] != 0 {
		t.Fatalf("multi-target run: %d requests, status %v", rep.Requests, rep.Status)
	}
	if want := targets[0] + "," + targets[1]; rep.Target != want {
		t.Errorf("report target %q, want %q", rep.Target, want)
	}
}
