//go:build race

package main

// raceEnabled widens test timing windows: the race detector slows the
// simulation hot loops by an order of magnitude or more.
const raceEnabled = true
