package main

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tracex"
	"tracex/client"
	"tracex/internal/obs"
	"tracex/wire"
)

// This file is the harness core: the operation mix, key-popularity and
// deadline distributions, the open- and closed-loop drivers, and the
// client-side latency accounting. main.go owns flags, the optional
// in-process daemon and the BENCH_serve.json output.

// opKind enumerates the request types the generator mixes.
type opKind int

const (
	opPredict opKind = iota // POST /v1/predict by (app, cores, machine) triple
	opGet                   // GET /v1/signatures/{key} — the store fast path
	opPut                   // PUT /v1/signatures/{key}
	opStudy                 // POST /v1/study — the expensive pipeline
	numOps
)

var opNames = [numOps]string{"predict", "get", "put", "study"}

// Mix is a weighted operation mix.
type Mix struct {
	Weights [numOps]int
	total   int
}

// parseMix parses "predict=6,get=3,put=1,study=0". Omitted operations get
// weight zero; at least one weight must be positive.
func parseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("mix term %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("mix weight %q is not a non-negative integer", val)
		}
		idx := -1
		for i, n := range opNames {
			if n == name {
				idx = i
				break
			}
		}
		if idx < 0 {
			return Mix{}, fmt.Errorf("unknown operation %q (want predict, get, put or study)", name)
		}
		m.Weights[idx] = w
	}
	for _, w := range m.Weights {
		m.total += w
	}
	if m.total == 0 {
		return Mix{}, errors.New("mix has no positive weight")
	}
	return m, nil
}

// String renders the mix back in flag form.
func (m Mix) String() string {
	parts := make([]string, 0, numOps)
	for i, w := range m.Weights {
		if w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", opNames[i], w))
		}
	}
	return strings.Join(parts, ",")
}

// pick draws one operation from the mix.
func (m Mix) pick(r *rand.Rand) opKind {
	n := r.IntN(m.total)
	for i, w := range m.Weights {
		if n < w {
			return opKind(i)
		}
		n -= w
	}
	return opPredict // unreachable
}

// DeadlineDist is a per-request deadline distribution.
type DeadlineDist struct {
	Kind string // "none", "fixed", "uniform" or "exp"
	// Base is the fixed deadline or the exponential mean; Min/Max bound the
	// uniform draw.
	Base, Min, Max time.Duration
}

// parseDeadlines parses "none", "fixed:200ms", "uniform:50ms-500ms" or
// "exp:200ms".
func parseDeadlines(s string) (DeadlineDist, error) {
	if s == "" || s == "none" {
		return DeadlineDist{Kind: "none"}, nil
	}
	kind, arg, ok := strings.Cut(s, ":")
	if !ok {
		return DeadlineDist{}, fmt.Errorf("deadline spec %q is not kind:args", s)
	}
	switch kind {
	case "fixed", "exp":
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			return DeadlineDist{}, fmt.Errorf("deadline %q needs a positive duration", s)
		}
		return DeadlineDist{Kind: kind, Base: d}, nil
	case "uniform":
		lo, hi, ok := strings.Cut(arg, "-")
		if !ok {
			return DeadlineDist{}, fmt.Errorf("uniform deadline %q is not min-max", s)
		}
		dlo, err1 := time.ParseDuration(lo)
		dhi, err2 := time.ParseDuration(hi)
		if err1 != nil || err2 != nil || dlo <= 0 || dhi < dlo {
			return DeadlineDist{}, fmt.Errorf("uniform deadline %q needs 0 < min <= max", s)
		}
		return DeadlineDist{Kind: kind, Min: dlo, Max: dhi}, nil
	default:
		return DeadlineDist{}, fmt.Errorf("unknown deadline kind %q (want none, fixed, uniform or exp)", kind)
	}
}

// String renders the distribution back in flag form.
func (d DeadlineDist) String() string {
	switch d.Kind {
	case "fixed", "exp":
		return d.Kind + ":" + d.Base.String()
	case "uniform":
		return "uniform:" + d.Min.String() + "-" + d.Max.String()
	default:
		return "none"
	}
}

// draw returns one deadline; zero means none.
func (d DeadlineDist) draw(r *rand.Rand) time.Duration {
	switch d.Kind {
	case "fixed":
		return d.Base
	case "uniform":
		return d.Min + time.Duration(r.Int64N(int64(d.Max-d.Min)+1))
	case "exp":
		return time.Duration(r.ExpFloat64() * float64(d.Base))
	default:
		return 0
	}
}

// keyPicker draws key indices: uniform, or Zipf-skewed so a few keys are
// hot (the store fast path's cache-friendly regime).
type keyPicker struct {
	keys int
	zipf *rand.Zipf // nil = uniform
}

func newKeyPicker(r *rand.Rand, keys int, s float64) *keyPicker {
	p := &keyPicker{keys: keys}
	if s > 0 {
		// rand.Zipf requires s > 1; v = 1 puts the mode at index 0.
		p.zipf = rand.NewZipf(r, s, 1, uint64(keys-1))
	}
	return p
}

func (p *keyPicker) pick(r *rand.Rand) int {
	if p.zipf != nil {
		return int(p.zipf.Uint64())
	}
	return r.IntN(p.keys)
}

// LoadConfig parameterizes one load run.
type LoadConfig struct {
	// Targets addresses the daemons under load; workers round-robin across
	// them, so a multi-element list spreads one workload over a fleet. A
	// single element is the classic single-daemon run.
	Targets []string
	// Duration is total wall-clock including Warmup; only requests that
	// complete inside the post-warmup measurement window are recorded.
	Duration, Warmup time.Duration
	// Rate is the open-loop arrival rate in requests/second (Poisson);
	// 0 runs closed-loop with Workers back-to-back requesters.
	Rate float64
	// Workers is the closed-loop concurrency, and in open loop the bound on
	// outstanding requests (arrivals beyond it count as Dropped).
	Workers int
	// Mix weights the operations.
	Mix Mix
	// Zipf is the key-popularity skew (0 = uniform; otherwise s > 1).
	Zipf float64
	// Keys is the number of distinct signature identities in play.
	Keys int
	// Deadline draws each request's client-side deadline.
	Deadline DeadlineDist
	// SampleRefs tunes the study operation's collections.
	SampleRefs int
	// Seed makes a run's arrival pattern reproducible.
	Seed uint64
}

func (c LoadConfig) validate() error {
	if len(c.Targets) == 0 {
		return errors.New("no target address")
	}
	for _, t := range c.Targets {
		if t == "" {
			return errors.New("empty target address")
		}
	}
	if c.Duration <= c.Warmup {
		return fmt.Errorf("duration %s must exceed warmup %s", c.Duration, c.Warmup)
	}
	if c.Workers <= 0 {
		return errors.New("workers must be positive")
	}
	if c.Keys <= 0 || c.Keys > loadMaxKeys {
		return fmt.Errorf("keys must be in [1, %d]", loadMaxKeys)
	}
	if c.Zipf != 0 && c.Zipf <= 1 {
		return fmt.Errorf("zipf skew %g: the Zipf s parameter must exceed 1 (or be 0 for uniform)", c.Zipf)
	}
	if c.Rate < 0 {
		return errors.New("rate must be non-negative")
	}
	return nil
}

// OpReport is one operation's client-side latency summary (milliseconds).
type OpReport struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
}

// Report is one run's result, keyed by label in BENCH_serve.json.
type Report struct {
	// Configuration echo.
	Target          string  `json:"target"`
	Mix             string  `json:"mix"`
	Workers         int     `json:"workers"`
	RateRPS         float64 `json:"rate_rps"` // 0 = closed loop
	Zipf            float64 `json:"zipf"`     // 0 = uniform
	Keys            int     `json:"keys"`
	Deadline        string  `json:"deadline"`
	Seed            uint64  `json:"seed"`
	WarmupSeconds   float64 `json:"warmup_seconds"`
	MeasuredSeconds float64 `json:"measured_seconds"`

	// Outcomes over the measurement window.
	Requests      uint64              `json:"requests"`
	Dropped       uint64              `json:"dropped"` // open loop: arrivals shed at the outstanding bound
	Status        map[string]uint64   `json:"status"`
	ThroughputRPS float64             `json:"throughput_rps"`
	Overall       OpReport            `json:"overall"`
	Ops           map[string]OpReport `json:"ops"`
}

// loadStats accumulates outcomes; the histograms only see requests that
// complete inside the measurement window.
type loadStats struct {
	measuring atomic.Bool
	requests  atomic.Uint64
	dropped   atomic.Uint64
	s2xx      atomic.Uint64
	s429      atomic.Uint64
	s4xx      atomic.Uint64
	s5xx      atomic.Uint64
	deadline  atomic.Uint64 // client-side deadline/cancel expiries
	errs      atomic.Uint64 // transport failures
	perOp     [numOps]*obs.Histogram
	overall   *obs.Histogram
}

func newLoadStats() *loadStats {
	reg := obs.New()
	st := &loadStats{overall: reg.Histogram("load.latency", obs.DefLatencyBuckets()...)}
	for i := range st.perOp {
		st.perOp[i] = reg.Histogram("load.latency."+opNames[i], obs.DefLatencyBuckets()...)
	}
	return st
}

// record files one completed request issued inside the measurement window.
func (st *loadStats) record(op opKind, d time.Duration, err error) {
	st.requests.Add(1)
	st.perOp[op].Observe(d.Seconds())
	st.overall.Observe(d.Seconds())
	switch {
	case err == nil:
		st.s2xx.Add(1)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		st.deadline.Add(1)
	default:
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			st.errs.Add(1)
			return
		}
		switch {
		case apiErr.Status == 429:
			st.s429.Add(1)
		case apiErr.Status >= 500:
			st.s5xx.Add(1)
		default:
			st.s4xx.Add(1)
		}
	}
}

func opReport(h *obs.Histogram) OpReport {
	r := OpReport{Count: h.Count()}
	if r.Count == 0 {
		// Quantile would be NaN here, and NaN is unmarshalable JSON.
		return r
	}
	r.MeanMs = 1000 * h.Sum() / float64(r.Count)
	r.P50Ms = 1000 * h.Quantile(0.50)
	r.P99Ms = 1000 * h.Quantile(0.99)
	r.P999Ms = 1000 * h.Quantile(0.999)
	return r
}

// loadApp and loadMachine fix the identity space the generator plays in.
// stencil3d is defined for 8..16384 cores, so key k maps to loadBaseCores+k.
const (
	loadApp       = "stencil3d"
	loadMachine   = "bluewaters"
	loadBaseCores = 8
	loadMaxKeys   = 16384 - loadBaseCores + 1
)

// workload is the prebuilt request material: one real signature per key,
// collected through the API (which warms the engine's caches exactly like
// production traffic would) and seeded into the store so GETs hit.
type workload struct {
	cfg LoadConfig
	// clients holds one client per target; worker w drives
	// clients[w % len(clients)], a static round-robin that keeps each
	// worker's connection pool pinned to one daemon.
	clients []*client.Client
	keys    []string
	sigs    []*tracex.Signature
	preds   []*wire.PredictRequest
	study   *wire.StudyRequest
}

// client returns the target client for one worker sequence number.
func (w *workload) client(seq uint64) *client.Client {
	return w.clients[seq%uint64(len(w.clients))]
}

// seedConcurrency bounds parallel seeding collections so setup does not
// trip the daemon's own admission control.
const seedConcurrency = 4

// newWorkload builds the key space: key k is the identity
// (stencil3d, loadBaseCores+k, bluewaters). Each key's signature is
// collected once via POST /v1/signatures on the first target and imported
// via PUT into every target, so during the run GETs resolve from each
// node's store and triple predicts ride the engines' warm memos — the
// serving regime, not the collection regime. Seeding is outside the
// measurement window by construction.
func newWorkload(ctx context.Context, cfg LoadConfig) (*workload, error) {
	w := &workload{
		cfg: cfg,
		// Retries tolerate admission pushback, both during seeding bursts
		// and when a measured run is pushed past a node's capacity.
		clients: make([]*client.Client, len(cfg.Targets)),
		keys:    make([]string, cfg.Keys),
		sigs:    make([]*tracex.Signature, cfg.Keys),
		preds:   make([]*wire.PredictRequest, cfg.Keys),
		study: &wire.StudyRequest{
			App: loadApp, Machine: loadMachine,
			InputCounts: []int{8, 16}, TargetCores: 32,
			SampleRefs: cfg.SampleRefs,
		},
	}
	for i, t := range cfg.Targets {
		w.clients[i] = client.New(t, client.WithRetries(5))
	}
	sem := make(chan struct{}, seedConcurrency)
	errs := make(chan error, cfg.Keys)
	var wg sync.WaitGroup
	for k := 0; k < cfg.Keys; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cores := loadBaseCores + k
			coll, err := w.clients[0].Collect(ctx, &wire.SignatureRequest{
				App: loadApp, Cores: cores, Machine: loadMachine,
				SampleRefs: cfg.SampleRefs,
			})
			if err != nil {
				errs <- fmt.Errorf("seeding collect at %d cores: %w", cores, err)
				return
			}
			key := client.Key(loadApp, cores, loadMachine)
			for i, cl := range w.clients {
				if _, err := cl.PutSignature(ctx, key, coll.Signature); err != nil {
					errs <- fmt.Errorf("seeding put %s to %s: %w", key, cfg.Targets[i], err)
					return
				}
			}
			w.keys[k] = key
			w.sigs[k] = coll.Signature
			w.preds[k] = &wire.PredictRequest{
				App: loadApp, Cores: cores, Machine: loadMachine,
				SampleRefs: cfg.SampleRefs,
			}
		}(k)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	// One throwaway predict per target warms the machine profile: the
	// MultiMAPS bandwidth surface is lazily built and memoized per machine,
	// and it is by far the most expensive single computation on the predict
	// path. Paying it here keeps the measurement window in the serving
	// regime instead of hiding one giant cold probe inside each node's
	// first measured predict.
	for i, cl := range w.clients {
		if _, err := cl.Predict(ctx, w.preds[0]); err != nil {
			return nil, fmt.Errorf("seeding warm predict on %s: %w", cfg.Targets[i], err)
		}
	}
	return w, nil
}

// issue sends one request through cl and reports its operation, latency
// and outcome.
func (w *workload) issue(ctx context.Context, cl *client.Client, r *rand.Rand, picker *keyPicker) (opKind, time.Duration, error) {
	op := w.cfg.Mix.pick(r)
	k := picker.pick(r)
	if d := w.cfg.Deadline.draw(r); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	start := time.Now()
	var err error
	switch op {
	case opPredict:
		_, err = cl.Predict(ctx, w.preds[k])
	case opGet:
		_, err = cl.GetSignature(ctx, w.keys[k])
	case opPut:
		_, err = cl.PutSignature(ctx, w.keys[k], w.sigs[k])
	case opStudy:
		_, err = cl.Study(ctx, w.study)
	}
	return op, time.Since(start), err
}

// runLoad executes one configured run against a live daemon and summarizes
// the measurement window.
func runLoad(ctx context.Context, cfg LoadConfig) (*Report, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w, err := newWorkload(ctx, cfg)
	if err != nil {
		return nil, err
	}
	st := newLoadStats()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	worker := func(seq uint64, next func() bool) {
		defer wg.Done()
		cl := w.client(seq)
		r := rand.New(rand.NewPCG(cfg.Seed, seq))
		picker := newKeyPicker(r, cfg.Keys, cfg.Zipf)
		for next() {
			measured := st.measuring.Load()
			op, d, err := w.issue(runCtx, cl, r, picker)
			if measured && st.measuring.Load() {
				st.record(op, d, err)
			}
		}
	}

	if cfg.Rate == 0 {
		// Closed loop: Workers requesters issue back-to-back.
		for i := 0; i < cfg.Workers; i++ {
			wg.Add(1)
			go worker(uint64(i), func() bool { return runCtx.Err() == nil })
		}
	} else {
		// Open loop: Poisson arrivals at the target rate, independent of
		// response times. Outstanding requests are bounded by Workers;
		// arrivals that would exceed the bound are shed and counted, so a
		// saturated server shows up as drops rather than a silently
		// throttled generator.
		wg.Add(1)
		go func() {
			defer wg.Done()
			arr := rand.New(rand.NewPCG(cfg.Seed, ^uint64(0)))
			sem := make(chan struct{}, cfg.Workers)
			var inner sync.WaitGroup
			defer inner.Wait()
			for seq := uint64(0); ; seq++ {
				wait := time.Duration(arr.ExpFloat64() / cfg.Rate * float64(time.Second))
				select {
				case <-runCtx.Done():
					return
				case <-time.After(wait):
				}
				select {
				case sem <- struct{}{}:
				default:
					// The outstanding bound is full: shed the arrival instead
					// of silently becoming a closed-loop generator.
					if st.measuring.Load() {
						st.dropped.Add(1)
					}
					continue
				}
				inner.Add(1)
				go func(seq uint64) {
					defer inner.Done()
					defer func() { <-sem }()
					cl := w.client(seq)
					r := rand.New(rand.NewPCG(cfg.Seed, seq))
					picker := newKeyPicker(r, cfg.Keys, cfg.Zipf)
					measured := st.measuring.Load()
					op, d, err := w.issue(runCtx, cl, r, picker)
					if measured && st.measuring.Load() {
						st.record(op, d, err)
					}
				}(seq)
			}
		}()
	}

	// Warmup, then the measurement window, then stop recording before the
	// workers wind down so shutdown noise never lands in the histograms.
	select {
	case <-time.After(cfg.Warmup):
	case <-ctx.Done():
		cancel()
		wg.Wait()
		return nil, ctx.Err()
	}
	st.measuring.Store(true)
	measureStart := time.Now()
	select {
	case <-time.After(cfg.Duration - cfg.Warmup):
	case <-ctx.Done():
	}
	st.measuring.Store(false)
	measured := time.Since(measureStart).Seconds()
	cancel()
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rep := &Report{
		Target: strings.Join(cfg.Targets, ","), Mix: cfg.Mix.String(), Workers: cfg.Workers,
		RateRPS: cfg.Rate, Zipf: cfg.Zipf, Keys: cfg.Keys,
		Deadline: cfg.Deadline.String(), Seed: cfg.Seed,
		WarmupSeconds: cfg.Warmup.Seconds(), MeasuredSeconds: measured,
		Requests: st.requests.Load(), Dropped: st.dropped.Load(),
		Status: map[string]uint64{
			"2xx": st.s2xx.Load(), "429": st.s429.Load(),
			"4xx": st.s4xx.Load(), "5xx": st.s5xx.Load(),
			"deadline": st.deadline.Load(), "error": st.errs.Load(),
		},
		Overall: opReport(st.overall),
		Ops:     make(map[string]OpReport, numOps),
	}
	if measured > 0 {
		rep.ThroughputRPS = float64(rep.Requests) / measured
	}
	for i, h := range st.perOp {
		if cfg.Mix.Weights[i] > 0 {
			rep.Ops[opNames[i]] = opReport(h)
		}
	}
	return rep, nil
}
