// Command tracexload is tracexd's load harness: a traffic generator that
// replays a weighted mix of predict, study, signature-GET and PUT requests
// against a live daemon — or an in-process one it spins up itself — and
// records client-side latency quantiles into BENCH_serve.json.
//
// The generator speaks the same tracex/wire contract as the daemon through
// the typed tracex/client, so load-harness traffic is byte-identical to
// production traffic. Key popularity follows a uniform or Zipf-skewed
// distribution over a configurable key space; arrivals are closed-loop
// (workers issuing back-to-back) or open-loop (Poisson at a target rate
// with a bounded-outstanding shed counter); deadlines draw from fixed,
// uniform or exponential distributions.
//
// Examples:
//
//	tracexload -inprocess -duration 10s -mix predict=6,get=3,put=1 -label closed
//	tracexload -addr http://127.0.0.1:8080 -rate 500 -zipf 1.2 -label open-zipf
//	tracexload -inprocess -duration 5s -assert-min-rps 10 -assert-max-5xx 0
//	tracexload -targets http://10.0.0.1:8321,http://10.0.0.2:8321 -label fleet
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tracex"
	"tracex/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracexload:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("tracexload", flag.ExitOnError)
	addr := fs.String("addr", "", "base URL of a running tracexd (e.g. http://127.0.0.1:8080)")
	targets := fs.String("targets", "", "comma-separated base URLs of several tracexd nodes; workers round-robin across them (mutually exclusive with -addr and -inprocess)")
	inprocess := fs.Bool("inprocess", false, "start a tracexd in-process and load it over loopback")
	storeDir := fs.String("store", "", "in-process store directory (default: a temp dir)")
	maxInFlight := fs.Int("max-inflight", 0, "in-process server in-flight bound (0 = GOMAXPROCS)")
	autoTune := fs.Bool("auto-tune", false, "enable admission auto-tuning on the in-process server")
	duration := fs.Duration("duration", 10*time.Second, "total run length, warmup included")
	warmup := fs.Duration("warmup", time.Second, "initial unrecorded span")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
	workers := fs.Int("workers", 64, "closed-loop concurrency; open-loop outstanding bound")
	mixFlag := fs.String("mix", "predict=6,get=3,put=1", "operation weights (predict, get, put, study)")
	zipf := fs.Float64("zipf", 0, "key-popularity skew: Zipf s parameter > 1 (0 = uniform)")
	keys := fs.Int("keys", 32, "distinct signature identities in play")
	deadlineFlag := fs.String("deadline", "none", "per-request deadline distribution: none, fixed:200ms, uniform:50ms-500ms or exp:200ms")
	sampleRefs := fs.Int("sample-refs", 5000, "per-block simulated references for study operations")
	seed := fs.Uint64("seed", 1, "arrival-pattern seed")
	outPath := fs.String("out", "BENCH_serve.json", "result file to create or update (\"\" = stdout only)")
	label := fs.String("label", "run", "name of this run in the result file")
	assertMinRPS := fs.Float64("assert-min-rps", 0, "fail unless measured throughput reaches this (0 = off)")
	assertMax5xx := fs.Int64("assert-max-5xx", -1, "fail if 5xx responses exceed this (-1 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		return err
	}
	deadlines, err := parseDeadlines(*deadlineFlag)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var targetList []string
	switch {
	case *targets != "":
		if *addr != "" || *inprocess {
			return fmt.Errorf("-targets is mutually exclusive with -addr and -inprocess")
		}
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targetList = append(targetList, t)
			}
		}
	case *inprocess:
		if *addr != "" {
			return fmt.Errorf("-addr and -inprocess are mutually exclusive")
		}
		base, shutdown, err := startInProcess(*storeDir, *maxInFlight, *autoTune)
		if err != nil {
			return err
		}
		defer shutdown()
		targetList = []string{base}
	case *addr != "":
		targetList = []string{*addr}
	}

	cfg := LoadConfig{
		Targets:  targetList,
		Duration: *duration, Warmup: *warmup,
		Rate: *rate, Workers: *workers,
		Mix: mix, Zipf: *zipf, Keys: *keys,
		Deadline: deadlines, SampleRefs: *sampleRefs, Seed: *seed,
	}
	rep, err := runLoad(ctx, cfg)
	if err != nil {
		return err
	}

	printSummary(out, *label, rep)
	if *outPath != "" {
		if err := writeBenchFile(*outPath, *label, rep); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s[%q]\n", *outPath, *label)
	}

	if *assertMinRPS > 0 && rep.ThroughputRPS < *assertMinRPS {
		return fmt.Errorf("throughput %.1f req/s below the asserted minimum %.1f",
			rep.ThroughputRPS, *assertMinRPS)
	}
	if *assertMax5xx >= 0 && rep.Status["5xx"] > uint64(*assertMax5xx) {
		return fmt.Errorf("%d 5xx responses exceed the asserted maximum %d",
			rep.Status["5xx"], *assertMax5xx)
	}
	return nil
}

// startInProcess boots a tracexd over a fresh engine on a loopback port and
// returns its base URL with a shutdown func.
func startInProcess(storeDir string, maxInFlight int, autoTune bool) (string, func(), error) {
	cleanup := func() {}
	if storeDir == "" {
		dir, err := os.MkdirTemp("", "tracexload-store-")
		if err != nil {
			return "", nil, err
		}
		storeDir = dir
		cleanup = func() { os.RemoveAll(dir) }
	}
	eng := tracex.NewEngine(tracex.WithStore(storeDir))
	if err := eng.Err(); err != nil {
		cleanup()
		return "", nil, err
	}
	s, err := server.New(server.Config{
		Engine: eng, MaxInFlight: maxInFlight, AutoTune: autoTune,
	})
	if err != nil {
		cleanup()
		return "", nil, err
	}
	bound, err := s.Start("127.0.0.1:0")
	if err != nil {
		cleanup()
		return "", nil, err
	}
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		cleanup()
	}
	return "http://" + bound.String(), shutdown, nil
}

// printSummary writes the human-readable run summary.
func printSummary(out *os.File, label string, rep *Report) {
	loop := "closed"
	if rep.RateRPS > 0 {
		loop = fmt.Sprintf("open @ %.0f req/s", rep.RateRPS)
	}
	fmt.Fprintf(out, "%s: %s loop, mix %s, %d keys (zipf %g), %.1fs measured\n",
		label, loop, rep.Mix, rep.Keys, rep.Zipf, rep.MeasuredSeconds)
	fmt.Fprintf(out, "  %d requests, %.1f req/s; status %v; dropped %d\n",
		rep.Requests, rep.ThroughputRPS, rep.Status, rep.Dropped)
	fmt.Fprintf(out, "  overall p50 %.2fms  p99 %.2fms  p999 %.2fms\n",
		rep.Overall.P50Ms, rep.Overall.P99Ms, rep.Overall.P999Ms)
	for _, name := range opNames {
		if op, ok := rep.Ops[string(name)]; ok {
			fmt.Fprintf(out, "  %-8s %8d reqs  p50 %8.2fms  p99 %8.2fms  p999 %8.2fms\n",
				name, op.Count, op.P50Ms, op.P99Ms, op.P999Ms)
		}
	}
}

// benchFile is the BENCH_serve.json layout: one file accumulating labeled
// runs, so uniform and Zipf sweeps land side by side.
type benchFile struct {
	Benchmark   string             `json:"benchmark"`
	UpdatedUnix int64              `json:"updated_unix"`
	Runs        map[string]*Report `json:"runs"`
}

// writeBenchFile merges one labeled report into path, preserving runs
// recorded under other labels.
func writeBenchFile(path, label string, rep *Report) error {
	bf := &benchFile{Benchmark: "tracexd-serving", Runs: map[string]*Report{}}
	if raw, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file is replaced rather than appended to.
		_ = json.Unmarshal(raw, bf)
		if bf.Runs == nil {
			bf.Runs = map[string]*Report{}
		}
	}
	bf.Benchmark = "tracexd-serving"
	bf.UpdatedUnix = time.Now().Unix()
	bf.Runs[label] = rep
	b, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
