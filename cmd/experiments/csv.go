package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tracex/internal/expt"
)

// csvDir is set by the -csv flag; when non-empty every experiment also
// writes its rows as <csvDir>/<exhibit>.csv so figures can be regenerated
// with any plotting tool.
var csvDir string

// writeCSV writes one exhibit's data file. A nil csvDir disables export.
func writeCSV(name string, header []string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("(wrote %s)\n", filepath.Join(csvDir, name+".csv"))
	return f.Close()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func itoa(v int) string     { return strconv.Itoa(v) }

// csvTable1 exports Table I.
func csvTable1(rows []expt.Table1Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{r.App, itoa(r.CoreCount), r.TraceType,
			ftoa(r.Predicted), ftoa(r.Measured), ftoa(r.PctError)})
	}
	return writeCSV("table1",
		[]string{"app", "cores", "trace", "predicted_s", "measured_s", "pct_error"}, out)
}

// csvTable2 exports Table II.
func csvTable2(rows []expt.Table2Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{itoa(r.CoreCount), ftoa(r.L1), ftoa(r.L2), ftoa(r.L3)})
	}
	return writeCSV("table2", []string{"cores", "l1_pct", "l2_pct", "l3_pct"}, out)
}

// csvTable3 exports Table III.
func csvTable3(rows []expt.Table3Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{itoa(r.CoreCount), ftoa(r.SystemA), ftoa(r.SystemB)})
	}
	return writeCSV("table3", []string{"cores", "systemA_12KB_pct", "systemB_56KB_pct"}, out)
}

// csvFigure1 exports the MultiMAPS surface.
func csvFigure1(rows []expt.Figure1Row) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		hr := make([]string, 0, len(r.HitRates))
		for _, h := range r.HitRates {
			hr = append(hr, ftoa(h))
		}
		out = append(out, append([]string{
			strconv.FormatUint(r.WorkingSetBytes, 10),
			strconv.FormatUint(r.StrideBytes, 10),
			ftoa(r.ResidentFraction),
			ftoa(r.BandwidthGBs),
		}, hr...))
	}
	return writeCSV("figure1",
		[]string{"working_set_bytes", "stride_bytes", "resident_fraction", "bandwidth_gbs", "hr_l1", "hr_l2"}, out)
}

// csvFitSeries exports a Figure 4/5-style series with all form fits.
func csvFitSeries(name string, fs *expt.FitSeries) error {
	forms := make([]string, 0, len(fs.FitValues))
	for f := range fs.FitValues {
		forms = append(forms, f)
	}
	// Stable order.
	for i := 0; i < len(forms); i++ {
		for j := i + 1; j < len(forms); j++ {
			if forms[j] < forms[i] {
				forms[i], forms[j] = forms[j], forms[i]
			}
		}
	}
	header := append([]string{"cores", "measured"}, forms...)
	out := make([][]string, 0, len(fs.Counts))
	for i, x := range fs.Counts {
		row := []string{ftoa(x), ftoa(fs.Measured[i])}
		for _, f := range forms {
			row = append(row, ftoa(fs.FitValues[f][i]))
		}
		out = append(out, row)
	}
	return writeCSV(name, header, out)
}

// csvScalingCurve exports the scaling-curve extension.
func csvScalingCurve(rows []expt.ScalingCurveRow) error {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{itoa(r.CoreCount), ftoa(r.Predicted),
			ftoa(r.Measured), ftoa(r.PctError), ftoa(r.Efficiency)})
	}
	return writeCSV("scaling_curve",
		[]string{"cores", "predicted_s", "measured_s", "pct_error", "efficiency"}, out)
}

// csvGeneric exports arbitrary labeled rows (used for ablations).
func csvGeneric(name string, header []string, rows [][]string) error {
	return writeCSV(strings.ReplaceAll(name, "-", "_"), header, rows)
}
