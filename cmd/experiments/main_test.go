package main

import (
	"os"
	"path/filepath"
	"testing"

	"tracex/internal/expt"
	"tracex/internal/pebil"
)

// fastCfg keeps the experiment smoke tests cheap; the expt package's
// process-wide memoization makes repeated runs nearly free.
var fastCfg = expt.Config{Collect: pebil.CollectorConfig{SampleRefs: 60_000, MaxWarmRefs: 400_000}}

func TestRunnersCoverEveryExperiment(t *testing.T) {
	// The -run dispatcher and the ordered list must agree.
	if len(runnerOrder()) == 0 {
		t.Fatal("no runner order")
	}
	for _, name := range runnerOrder() {
		if _, ok := runnerMap()[name]; !ok {
			t.Errorf("runner %q listed but not registered", name)
		}
	}
}

func TestFigure1Runner(t *testing.T) {
	if err := figure1(); err != nil {
		t.Fatalf("figure1: %v", err)
	}
}

func TestTable2RunnerWithCSV(t *testing.T) {
	dir := t.TempDir()
	csvDir = dir
	defer func() { csvDir = "" }()
	if err := table2(fastCfg); err != nil {
		t.Fatalf("table2: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "table2.csv")); err != nil {
		t.Errorf("table2.csv not written: %v", err)
	}
}

func TestTable3Runner(t *testing.T) {
	if err := table3(fastCfg); err != nil {
		t.Fatalf("table3: %v", err)
	}
}

func TestFigure45Runners(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	if err := figure45(fastCfg, expt.Figure4, "Figure 4 (test)"); err != nil {
		t.Fatalf("figure4: %v", err)
	}
	if err := figure45(fastCfg, expt.Figure5, "Figure 5 (test)"); err != nil {
		t.Fatalf("figure5: %v", err)
	}
}

func TestCalibrationRunner(t *testing.T) {
	if err := calibrationDemo(fastCfg); err != nil {
		t.Fatalf("calibration: %v", err)
	}
}
