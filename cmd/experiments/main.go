// Command experiments regenerates every table and figure from the paper's
// evaluation section, plus the repository's ablation studies. Each
// experiment prints the same rows the paper reports, produced by this
// reproduction's pipeline.
//
// Usage:
//
//	experiments -run all
//	experiments -run table1 [-sample 400000] [-warm 2000000]
//	experiments -run table2|table3|figure1|figure3|figure4|figure5|claim
//	experiments -run ablation-forms|ablation-inputs|ablation-clustering|ablation-sample
//	experiments -run weak-scaling|comm-extrap|energy-dvfs
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"tracex/internal/expt"
	"tracex/internal/pebil"
)

func main() {
	run := flag.String("run", "all", "experiment to run (all, table1, table2, table3, figure1, figure3, figure4, figure5, claim, ablation-forms, ablation-inputs, ablation-clustering, ablation-sample)")
	sample := flag.Int("sample", 0, "per-block simulated references (0 = default)")
	warm := flag.Int("warm", 0, "per-block warm-up cap (0 = default)")
	flag.StringVar(&csvDir, "csv", "", "also write each exhibit's rows as CSV into this directory")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := expt.Config{Ctx: ctx, Collect: pebil.CollectorConfig{SampleRefs: *sample, MaxWarmRefs: *warm}}
	runners := runnerMap()
	order := runnerOrder()
	if *run == "all" {
		for _, name := range order {
			if err := runners[name](cfg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
				os.Exit(1)
			}
		}
		return
	}
	fn, ok := runners[*run]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (have %s)\n",
			*run, strings.Join(order, ", "))
		os.Exit(2)
	}
	if err := fn(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", *run, err)
		os.Exit(1)
	}
}

// runnerMap registers every experiment by name.
func runnerMap() map[string]func(expt.Config) error {
	return map[string]func(expt.Config) error{
		"table1":  table1,
		"table2":  table2,
		"table3":  table3,
		"figure1": func(expt.Config) error { return figure1() },
		"figure3": figure3,
		"figure4": func(c expt.Config) error {
			return figure45(c, expt.Figure4, "Figure 4: L2 hit rate of uh3d/current_deposit")
		},
		"figure5": func(c expt.Config) error {
			return figure45(c, expt.Figure5, "Figure 5: memory operations of uh3d/field_update")
		},
		"claim":               claim,
		"ablation-forms":      ablationForms,
		"ablation-inputs":     ablationInputs,
		"ablation-clustering": ablationClustering,
		"ablation-sample":     ablationSample,
		"ablation-distance":   ablationDistance,
		"ablation-collection": ablationCollection,
		"weak-scaling":        weakScaling,
		"comm-extrap":         commExtrap,
		"energy-dvfs":         energyDVFS,
		"prefetch":            prefetchExploration,
		"cross-arch":          crossArch,
		"scaling-curve":       scalingCurve,
		"calibration":         calibrationDemo,
	}
}

// runnerOrder lists the experiments in presentation order.
func runnerOrder() []string {
	return []string{
		"table1", "table2", "table3", "figure1", "figure3", "figure4", "figure5", "claim",
		"ablation-forms", "ablation-inputs", "ablation-clustering", "ablation-sample",
		"ablation-distance", "ablation-collection",
		"weak-scaling", "comm-extrap", "energy-dvfs", "prefetch", "cross-arch",
		"scaling-curve", "calibration",
	}
}

func header(title string) {
	fmt.Printf("\n%s\n%s\n", title, strings.Repeat("-", len(title)))
}

func table1(cfg expt.Config) error {
	rows, err := expt.Table1(cfg)
	if err != nil {
		return err
	}
	header("Table I: prediction errors using extrapolated and collected traces")
	fmt.Printf("%-12s %6s %-8s %12s %12s %8s\n",
		"Application", "Cores", "Trace", "Predicted(s)", "Measured(s)", "%Error")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %-8s %12.1f %12.1f %7.1f%%\n",
			r.App, r.CoreCount, r.TraceType, r.Predicted, r.Measured, r.PctError)
	}
	return csvTable1(rows)
}

func table2(cfg expt.Config) error {
	rows, err := expt.Table2(cfg)
	if err != nil {
		return err
	}
	header("Table II: target-system cache hit rates of uh3d/field_update vs core count")
	fmt.Printf("%10s %8s %8s %8s\n", "Core Count", "L1 HR", "L2 HR", "L3 HR")
	for _, r := range rows {
		fmt.Printf("%10d %7.1f%% %7.1f%% %7.1f%%\n", r.CoreCount, r.L1, r.L2, r.L3)
	}
	return csvTable2(rows)
}

func table3(cfg expt.Config) error {
	rows, err := expt.Table3(cfg)
	if err != nil {
		return err
	}
	header("Table III: L1 hit rate of specfem3d/flux_lookup_table on two candidate systems")
	fmt.Printf("%10s %16s %16s\n", "Core Count", "A (12 KB L1)", "B (56 KB L1)")
	for _, r := range rows {
		fmt.Printf("%10d %15.1f%% %15.1f%%\n", r.CoreCount, r.SystemA, r.SystemB)
	}
	return csvTable3(rows)
}

func figure1() error {
	rows, err := expt.Figure1()
	if err != nil {
		return err
	}
	header("Figure 1: MultiMAPS bandwidth surface (opteron2)")
	fmt.Printf("%12s %8s %6s %8s %8s %10s\n",
		"WorkingSet", "Stride", "Mixed", "L1 HR", "L2 HR", "BW (GB/s)")
	for _, r := range rows {
		stride := fmt.Sprintf("%d", r.StrideBytes)
		if r.StrideBytes == 0 && r.ResidentFraction == 0 {
			stride = "rand"
		}
		mixed := "-"
		if r.ResidentFraction > 0 {
			mixed = fmt.Sprintf("%.3f", r.ResidentFraction)
		}
		fmt.Printf("%12d %8s %6s %7.1f%% %7.1f%% %10.2f\n",
			r.WorkingSetBytes, stride, mixed, 100*r.HitRates[0], 100*r.HitRates[1], r.BandwidthGBs)
	}
	return csvFigure1(rows)
}

func figure3(cfg expt.Config) error {
	rows, err := expt.Figure3(cfg)
	if err != nil {
		return err
	}
	header("Figure 3: per-element extrapolation of specfem3d/compute_element_forces (96/384/1536 → 6144)")
	fmt.Printf("%-18s %-12s %36s %14s\n", "Element", "Form", "Inputs", "Extrapolated")
	for _, r := range rows {
		ins := make([]string, len(r.Inputs))
		for i, v := range r.Inputs {
			ins[i] = fmt.Sprintf("%.4g", v)
		}
		fmt.Printf("%-18s %-12s %36s %14.6g\n",
			r.Element, r.Form, strings.Join(ins, "  "), r.Extrapolated)
	}
	return nil
}

func figure45(cfg expt.Config, f func(expt.Config) (*expt.FitSeries, error), title string) error {
	fs, err := f(cfg)
	if err != nil {
		return err
	}
	header(title)
	fmt.Printf("%10s %14s", "Cores", "Measured")
	forms := make([]string, 0, len(fs.FitValues))
	for form := range fs.FitValues {
		forms = append(forms, form)
	}
	sort.Strings(forms)
	for _, form := range forms {
		fmt.Printf(" %14s", form)
	}
	fmt.Println()
	for i, x := range fs.Counts {
		fmt.Printf("%10.0f %14.6g", x, fs.Measured[i])
		for _, form := range forms {
			fmt.Printf(" %14.6g", fs.FitValues[form][i])
		}
		fmt.Println()
	}
	fmt.Printf("selected form: %s\n", fs.Selected)
	name := "figure4"
	if fs.Element == "mem_ops" {
		name = "figure5"
	}
	return csvFitSeries(name, fs)
}

func claim(cfg expt.Config) error {
	rows, err := expt.InfluentialElementError(cfg)
	if err != nil {
		return err
	}
	header("Section IV claim: influential-element extrapolation error (<20 %)")
	fmt.Printf("%-12s %8s %10s %10s %10s %-28s\n",
		"Application", "Cores", "Max err", "Mean err", "Elements", "Worst element")
	var out [][]string
	for _, r := range rows {
		fmt.Printf("%-12s %8d %9.1f%% %9.1f%% %4d/%-4d %-28s\n",
			r.App, r.TargetCount, 100*r.MaxError, 100*r.MeanError, r.NumInfluent, r.NumElements, r.WorstElement)
		out = append(out, []string{r.App, itoa(r.TargetCount),
			ftoa(100 * r.MaxError), ftoa(100 * r.MeanError),
			itoa(r.NumInfluent), itoa(r.NumElements), r.WorstElement})
	}
	return csvGeneric("claim",
		[]string{"app", "cores", "max_err_pct", "mean_err_pct", "influential", "elements", "worst"}, out)
}

func ablationForms(cfg expt.Config) error {
	rows, err := expt.AblationForms(cfg)
	if err != nil {
		return err
	}
	header("Ablation: canonical form sets")
	fmt.Printf("%-12s %-24s %10s %10s\n", "Application", "Forms", "Max err", "Mean err")
	var out [][]string
	for _, r := range rows {
		fmt.Printf("%-12s %-24s %9.1f%% %9.1f%%\n", r.App, r.FormSet, 100*r.MaxError, 100*r.MeanErr)
		out = append(out, []string{r.App, r.FormSet, ftoa(100 * r.MaxError), ftoa(100 * r.MeanErr)})
	}
	return csvGeneric("ablation-forms", []string{"app", "form_set", "max_err_pct", "mean_err_pct"}, out)
}

func ablationInputs(cfg expt.Config) error {
	rows, err := expt.AblationInputCounts(cfg)
	if err != nil {
		return err
	}
	header("Ablation: number of input core counts")
	fmt.Printf("%-12s %-28s %10s %10s\n", "Application", "Input counts", "Max err", "Mean err")
	for _, r := range rows {
		ins := make([]string, len(r.Inputs))
		for i, v := range r.Inputs {
			ins[i] = fmt.Sprintf("%d", v)
		}
		fmt.Printf("%-12s %-28s %9.1f%% %9.1f%%\n",
			r.App, strings.Join(ins, ","), 100*r.MaxError, 100*r.MeanErr)
	}
	return nil
}

func ablationClustering(cfg expt.Config) error {
	rows, err := expt.AblationClustering(cfg)
	if err != nil {
		return err
	}
	header("Ablation: rank-scaling strategy (Future Work clustering)")
	fmt.Printf("%-12s %-10s %12s %12s %8s\n", "Application", "Strategy", "Runtime(s)", "Measured(s)", "%Error")
	for _, r := range rows {
		fmt.Printf("%-12s %-10s %12.1f %12.1f %7.1f%%\n",
			r.App, r.Strategy, r.Runtime, r.Measured, r.PctError)
	}
	return nil
}

func ablationCollection(cfg expt.Config) error {
	rows, err := expt.AblationCollectionMode(cfg)
	if err != nil {
		return err
	}
	header("Ablation: signature-collection mode (private vs shared hierarchy)")
	fmt.Printf("%-12s %-8s %12s %12s\n", "Application", "Mode", "Max elem err", "Pred err")
	for _, r := range rows {
		fmt.Printf("%-12s %-8s %11.1f%% %11.1f%%\n",
			r.App, r.Mode, 100*r.MaxError, r.PredErrPct)
	}
	return nil
}

func ablationDistance(cfg expt.Config) error {
	rows, err := expt.AblationDistance(cfg)
	if err != nil {
		return err
	}
	header("Ablation: extrapolation distance")
	fmt.Printf("%-12s %8s %8s %10s %10s\n", "Application", "Target", "Factor", "Max err", "Mean err")
	var out [][]string
	for _, r := range rows {
		fmt.Printf("%-12s %8d %7.0f× %9.1f%% %9.1f%%\n",
			r.App, r.Target, r.Factor, 100*r.MaxError, 100*r.MeanErr)
		out = append(out, []string{r.App, itoa(r.Target), ftoa(r.Factor),
			ftoa(100 * r.MaxError), ftoa(100 * r.MeanErr)})
	}
	return csvGeneric("ablation-distance",
		[]string{"app", "target", "factor", "max_err_pct", "mean_err_pct"}, out)
}

func weakScaling(cfg expt.Config) error {
	rows, err := expt.WeakScaling(cfg)
	if err != nil {
		return err
	}
	header("Extension: weak vs strong scaling (Future Work §VI)")
	fmt.Printf("%-14s %-8s %10s %10s %10s\n", "Application", "Regime", "Max err", "Mean err", "Pred err")
	for _, r := range rows {
		fmt.Printf("%-14s %-8s %9.1f%% %9.2f%% %9.1f%%\n",
			r.App, r.Regime, 100*r.MaxError, 100*r.MeanErr, r.PredErrPct)
	}
	return nil
}

func commExtrap(cfg expt.Config) error {
	rows, err := expt.CommExtrap(cfg)
	if err != nil {
		return err
	}
	header("Extension: communication-trace extrapolation (ScalaExtrap complement)")
	for _, r := range rows {
		fmt.Printf("%s (target comm time: synthesized %.4f s vs actual %.4f s)\n",
			r.App, r.SynthCommSeconds, r.ActualCommSeconds)
		for _, field := range r.SortedFieldNames() {
			fmt.Printf("  %-24s %6.2f%% error\n", field, 100*r.FieldErrors[field])
		}
	}
	return nil
}

func energyDVFS(cfg expt.Config) error {
	rows, err := expt.EnergyDVFS(cfg)
	if err != nil {
		return err
	}
	header("Extension: energy and DVFS from extrapolated traces")
	fmt.Printf("%-12s %6s %12s %10s %12s %10s\n",
		"Application", "Cores", "Energy (J)", "Avg W", "E-opt f/f₀", "EDP-opt")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %12.1f %10.1f %12.2f %10.2f\n",
			r.App, r.CoreCount, r.Joules, r.AvgWatts, r.OptEnergyF, r.OptEDPF)
	}
	return nil
}

func calibrationDemo(cfg expt.Config) error {
	rows, err := expt.CalibrationDemo(cfg)
	if err != nil {
		return err
	}
	header("Extension: machine-profile calibration (inverse problem, ref [27])")
	fmt.Printf("%-12s %14s %14s %14s %10s\n",
		"Application", "Distorted err", "Calibrated err", "Recovered MLP", "True MLP")
	for _, r := range rows {
		fmt.Printf("%-12s %13.1f%% %13.2f%% %14.2f %10.1f\n",
			r.App, 100*r.DistortedErr, 100*r.CalibratedErr, r.RecoveredMLP, r.TrueMLP)
	}
	return nil
}

func scalingCurve(cfg expt.Config) error {
	rows, err := expt.ScalingCurve(cfg)
	if err != nil {
		return err
	}
	header("Extension: predicted strong-scaling curve (uh3d on bluewaters)")
	fmt.Printf("%8s %14s %14s %8s %12s\n",
		"Cores", "Predicted (s)", "Measured (s)", "%Error", "Efficiency")
	for _, r := range rows {
		fmt.Printf("%8d %14.1f %14.1f %7.1f%% %11.2f\n",
			r.CoreCount, r.Predicted, r.Measured, r.PctError, r.Efficiency)
	}
	return csvScalingCurve(rows)
}

func crossArch(cfg expt.Config) error {
	rows, err := expt.CrossArch(cfg)
	if err != nil {
		return err
	}
	header("Extension: cross-architectural prediction (paper §III-A)")
	fmt.Printf("%-12s %-12s %6s %14s %14s %8s\n",
		"Application", "Machine", "Cores", "Predicted (s)", "Measured (s)", "%Error")
	var out [][]string
	for _, r := range rows {
		fmt.Printf("%-12s %-12s %6d %14.1f %14.1f %7.1f%%\n",
			r.App, r.Machine, r.CoreCount, r.Predicted, r.Measured, r.PctError)
		out = append(out, []string{r.App, r.Machine, itoa(r.CoreCount),
			ftoa(r.Predicted), ftoa(r.Measured), ftoa(r.PctError)})
	}
	return csvGeneric("cross-arch",
		[]string{"app", "machine", "cores", "predicted_s", "measured_s", "pct_error"}, out)
}

func prefetchExploration(cfg expt.Config) error {
	rows, err := expt.PrefetchExploration(cfg)
	if err != nil {
		return err
	}
	header("Extension: hardware-prefetcher exploration (Table III-style design study)")
	fmt.Printf("%-12s %6s %14s %14s %10s\n",
		"Application", "Cores", "Baseline (s)", "Prefetch (s)", "Speedup")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %14.1f %14.1f %9.1f%%\n",
			r.App, r.CoreCount, r.Baseline, r.Prefetched, r.SpeedupPct)
	}
	return nil
}

func ablationSample(cfg expt.Config) error {
	rows, err := expt.AblationSampleSize(cfg, nil)
	if err != nil {
		return err
	}
	header("Ablation: per-block simulation sample size")
	fmt.Printf("%-12s %12s %10s\n", "Application", "Sample refs", "Max err")
	for _, r := range rows {
		fmt.Printf("%-12s %12d %9.1f%%\n", r.App, r.SampleRefs, 100*r.MaxError)
	}
	return nil
}
