package tracex

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tracex/internal/pebil"
)

// smallOpt keeps engine-test collections fast.
var smallOpt = CollectOptions{SampleRefs: 20_000, MaxWarmRefs: 60_000}

func testApp(t testing.TB, name string) *App {
	t.Helper()
	app, err := LoadApp(name)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func testMachine(t testing.TB, name string) MachineConfig {
	t.Helper()
	cfg, err := LoadMachine(name)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestEngineOptions(t *testing.T) {
	opt := CollectOptions{SampleRefs: 123}
	e := NewEngine(WithParallelism(3), WithCacheSize(7), WithCollectOptions(opt))
	if e.parallelism != 3 {
		t.Errorf("parallelism %d, want 3", e.parallelism)
	}
	if cap(e.sem) != 3 {
		t.Errorf("sem capacity %d, want 3", cap(e.sem))
	}
	if e.collectOpt != opt {
		t.Errorf("collectOpt %+v", e.collectOpt)
	}
	if err := e.Err(); err != nil {
		t.Errorf("valid options reported configuration error %v", err)
	}
}

// TestEngineClose covers the lifecycle redesign: Close drains the
// collection arena and releases the store handle, is idempotent, and flips
// every pipeline method to ErrEngineClosed.
func TestEngineClose(t *testing.T) {
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	ctx := context.Background()
	e := NewEngine(WithParallelism(2), WithStore(t.TempDir()))
	if _, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt); err != nil {
		t.Fatalf("collect before Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := e.Profile(ctx, cfg); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Profile after Close: %v, want ErrEngineClosed", err)
	}
	if _, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("CollectSignature after Close: %v, want ErrEngineClosed", err)
	}
	if _, err := e.Measure(ctx, app, 64, cfg, smallOpt); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Measure after Close: %v, want ErrEngineClosed", err)
	}
	if _, err := e.Study(ctx, StudyRequest{}); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Study after Close: %v, want ErrEngineClosed", err)
	}
	// Err still reports configuration state, not closure.
	if err := e.Err(); err != nil {
		t.Errorf("Err after Close: %v, want nil", err)
	}
	// The store handle was released: writes through it now fail.
	if _, err := e.Store().Put(&Signature{}, SignatureKey{}); err == nil {
		t.Error("store Put after Close succeeded, want error from released handle")
	}
}

// TestEngineBadParallelism checks the clamp-or-error redesign: zero and
// negative worker bounds used to be silently replaced, now they poison the
// engine with an ErrBadParallelism-wrapping error.
func TestEngineBadParallelism(t *testing.T) {
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	for _, n := range []int{0, -1, -8} {
		e := NewEngine(WithParallelism(n))
		if !errors.Is(e.Err(), ErrBadParallelism) {
			t.Fatalf("WithParallelism(%d): Err() = %v, want ErrBadParallelism", n, e.Err())
		}
		// Every pipeline method refuses to run on a misconfigured engine.
		if _, err := e.Profile(ctx, cfg); !errors.Is(err, ErrBadParallelism) {
			t.Errorf("Profile on bad engine: %v", err)
		}
		if _, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt); !errors.Is(err, ErrBadParallelism) {
			t.Errorf("CollectSignature on bad engine: %v", err)
		}
		if _, err := e.Predict(ctx, PredictRequest{}); !errors.Is(err, ErrBadParallelism) {
			t.Errorf("Predict on bad engine: %v", err)
		}
		if _, err := e.Study(ctx, StudyRequest{}); !errors.Is(err, ErrBadParallelism) {
			t.Errorf("Study on bad engine: %v", err)
		}
	}
	// A later valid option does not mask an earlier invalid one.
	if e := NewEngine(WithParallelism(0), WithParallelism(4)); !errors.Is(e.Err(), ErrBadParallelism) {
		t.Errorf("Err() = %v after invalid-then-valid options", e.Err())
	}
}

// TestEngineCollectCache is the memoization acceptance criterion: a second
// identical collection must be served from cache with zero new simulation.
func TestEngineCollectCache(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")

	first, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second identical collection did not return the cached signature")
	}
	st := e.Stats()
	if st.Collections != 1 || st.CollectionHits != 1 {
		t.Errorf("stats %+v, want 1 collection and 1 hit", st)
	}

	// A different core count is a different key.
	if _, err := e.CollectSignature(ctx, app, 128, cfg, smallOpt); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Collections != 2 {
		t.Errorf("collections %d after distinct request, want 2", st.Collections)
	}
}

func TestEngineProfileCache(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	cfg := testMachine(t, "opteron2")
	first, err := e.Profile(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Profile(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("second profile request did not return the cached profile")
	}
	if st := e.Stats(); st.ProfileBuilds != 1 || st.ProfileHits != 1 {
		t.Errorf("stats %+v, want 1 build and 1 hit", e.Stats())
	}
	// Same name, different geometry → different fingerprint → new sweep.
	tweaked := cfg
	tweaked.MemBandwidthGBs *= 2
	if _, err := e.Profile(ctx, tweaked); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.ProfileBuilds != 2 {
		t.Errorf("profile builds %d after geometry change, want 2", st.ProfileBuilds)
	}
}

// TestEngineCollectInputsDedup exercises the singleflight path through the
// public API: duplicate core counts in one batch must run one simulation.
func TestEngineCollectInputsDedup(t *testing.T) {
	e := NewEngine()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	sigs, err := e.CollectInputs(context.Background(), app, []int{64, 64, 64, 128}, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != 4 {
		t.Fatalf("got %d signatures", len(sigs))
	}
	if sigs[0] != sigs[1] || sigs[1] != sigs[2] {
		t.Error("duplicate counts produced distinct signatures")
	}
	if st := e.Stats(); st.Collections != 2 {
		t.Errorf("ran %d collections for 2 distinct counts", st.Collections)
	}
}

func TestEngineCancelledContext(t *testing.T) {
	e := NewEngine()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt); !errors.Is(err, context.Canceled) {
		t.Errorf("CollectSignature on cancelled ctx: %v", err)
	}
	if _, err := e.Profile(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("Profile on cancelled ctx: %v", err)
	}
	if _, err := e.Extrapolate(ctx, nil, 512, ExtrapOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("Extrapolate on cancelled ctx: %v", err)
	}
	if _, err := e.Measure(ctx, app, 64, cfg, smallOpt); !errors.Is(err, context.Canceled) {
		t.Errorf("Measure on cancelled ctx: %v", err)
	}
}

// TestEngineCancellationMidCollection is the promptness acceptance
// criterion: cancelling mid-simulation must abort the collection quickly
// even though the full run would take far longer.
func TestEngineCancellationMidCollection(t *testing.T) {
	e := NewEngine()
	app := testApp(t, "uh3d")
	cfg := testMachine(t, "bluewaters")
	heavy := CollectOptions{SampleRefs: 5_000_000, MaxWarmRefs: 10_000_000}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.CollectSignature(ctx, app, 2048, cfg, heavy)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-collection cancel returned %v", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestEnginePredictAndBatch(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	sig, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := e.Profile(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	base, err := e.Predict(ctx, PredictRequest{Signature: sig, App: app, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if base.Runtime <= 0 {
		t.Fatalf("non-positive runtime %g", base.Runtime)
	}
	if base.Replay != nil || base.Timeline != nil {
		t.Error("replay/timeline attached without being requested")
	}

	// One request type covers the old Predict/PredictDetailed/
	// PredictTimeline trio.
	full, err := e.Predict(ctx, PredictRequest{
		Signature: sig, App: app, Profile: prof, WithReplay: true, WithTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.Replay == nil || full.Timeline == nil {
		t.Fatal("requested replay/timeline missing")
	}
	if full.Runtime != base.Runtime {
		t.Errorf("detailed prediction runtime %g != %g", full.Runtime, base.Runtime)
	}

	// Omitting the profile makes the engine build (and cache) it from the
	// request's machine config.
	fromCfg, err := e.Predict(ctx, PredictRequest{Signature: sig, App: app, Machine: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if fromCfg.Runtime != base.Runtime {
		t.Errorf("machine-config prediction runtime %g != %g", fromCfg.Runtime, base.Runtime)
	}

	// Batch: results in request order, all identical here.
	reqs := make([]PredictRequest, 16)
	for i := range reqs {
		reqs[i] = PredictRequest{Signature: sig, App: app, Profile: prof, WithReplay: i%2 == 0}
	}
	preds, err := e.PredictMany(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range preds {
		if p == nil || p.Runtime != base.Runtime {
			t.Fatalf("batch prediction %d: %+v", i, p)
		}
		if (p.Replay != nil) != (i%2 == 0) {
			t.Errorf("batch prediction %d replay presence wrong", i)
		}
	}

	// Validation errors.
	if _, err := e.Predict(ctx, PredictRequest{App: app, Profile: prof}); err == nil {
		t.Error("request without signature accepted")
	}
	if _, err := e.Predict(ctx, PredictRequest{Signature: sig, Profile: prof}); err == nil {
		t.Error("request without app accepted")
	}
}

// TestEngineConcurrentUse hammers one engine from many goroutines; run with
// -race to check the concurrency-safety claim.
func TestEngineConcurrentUse(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sig, err := e.CollectSignature(ctx, app, 64+32*(i%2), cfg, smallOpt)
			if err != nil {
				errs[i] = err
				return
			}
			prof, err := e.Profile(ctx, cfg)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = e.Predict(ctx, PredictRequest{Signature: sig, App: app, Profile: prof})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if st := e.Stats(); st.Collections != 2 {
		t.Errorf("%d collections for 2 distinct keys across 8 workers", st.Collections)
	}
}

func TestEngineStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("study in -short mode")
	}
	e := NewEngine()
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	res, err := e.Study(ctx, StudyRequest{
		App:         app,
		Machine:     cfg,
		InputCounts: []int{64, 128, 256},
		TargetCores: 512,
		Collect:     smallOpt,
		WithTruth:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tgt := res.Target(512)
	if res.Profile == nil || len(res.Inputs) != 3 || tgt == nil || tgt.Extrapolation == nil {
		t.Fatalf("incomplete study result %+v", res)
	}
	if tgt.Extrapolated == nil || tgt.Extrapolated.CoreCount != 512 {
		t.Fatalf("bad extrapolated prediction %+v", tgt.Extrapolated)
	}
	if tgt.Truth == nil || tgt.Collected == nil {
		t.Fatal("WithTruth did not produce the collected baseline")
	}
	if res.Target(4096) != nil {
		t.Error("Target(4096) found a target the study never evaluated")
	}
	rows := res.Rows()
	if len(rows) != 1 || rows[0].TargetCores != 512 {
		t.Fatalf("rows %+v, want one row at 512", rows)
	}
	if rows[0].PredictedSeconds != tgt.Extrapolated.Runtime || rows[0].ActualSeconds != tgt.Collected.Runtime {
		t.Errorf("row %+v disagrees with predictions", rows[0])
	}
	if want := abs(rows[0].PredictedSeconds-rows[0].ActualSeconds) / rows[0].ActualSeconds; rows[0].AbsRelErr != want {
		t.Errorf("AbsRelErr %g, want %g", rows[0].AbsRelErr, want)
	}

	// Request validation.
	if _, err := e.Study(ctx, StudyRequest{Machine: cfg, InputCounts: []int{64}}); err == nil {
		t.Error("study without app accepted")
	}
	if _, err := e.Study(ctx, StudyRequest{App: app, Machine: cfg}); err == nil {
		t.Error("study without input counts accepted")
	}
	if _, err := e.Study(ctx, StudyRequest{App: app, Machine: cfg, InputCounts: []int{64}}); err == nil {
		t.Error("study without any target accepted")
	}
	if _, err := e.Study(ctx, StudyRequest{
		App: app, Machine: cfg, InputCounts: []int{64}, TargetCounts: []int{-512},
	}); err == nil {
		t.Error("study with negative target accepted")
	}
}

// TestEngineStudyMultiTarget exercises the multi-target redesign: one study
// evaluating several extrapolation targets off shared inputs, with sorted
// typed rows and a stable JSON encoding.
func TestEngineStudyMultiTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("study in -short mode")
	}
	e := NewEngine()
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	res, err := e.Study(ctx, StudyRequest{
		App:          app,
		Machine:      cfg,
		InputCounts:  []int{64, 128, 256},
		TargetCores:  512,
		TargetCounts: []int{768, 512}, // duplicate of TargetCores on purpose
		Collect:      smallOpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 2 {
		t.Fatalf("%d targets after dedup, want 2", len(res.Targets))
	}
	if res.Targets[0].TargetCores != 512 || res.Targets[1].TargetCores != 768 {
		t.Fatalf("targets not sorted ascending: %d, %d",
			res.Targets[0].TargetCores, res.Targets[1].TargetCores)
	}
	for _, tgt := range res.Targets {
		if tgt.Extrapolation == nil || tgt.Extrapolated == nil {
			t.Fatalf("target %d incomplete", tgt.TargetCores)
		}
		if tgt.Extrapolated.CoreCount != tgt.TargetCores {
			t.Errorf("target %d predicted at %d cores", tgt.TargetCores, tgt.Extrapolated.CoreCount)
		}
		if tgt.Truth != nil || tgt.Collected != nil {
			t.Errorf("target %d has truth without WithTruth", tgt.TargetCores)
		}
	}
	// Target() addresses each evaluated count directly.
	if res.Target(512) != &res.Targets[0] || res.Target(768) != &res.Targets[1] {
		t.Error("Target() does not address the evaluated counts")
	}

	rows := res.Rows()
	if len(rows) != 2 || rows[0].TargetCores != 512 || rows[1].TargetCores != 768 {
		t.Fatalf("rows %+v", rows)
	}
	if rows[0].ActualSeconds != 0 || rows[0].AbsRelErr != 0 {
		t.Error("truthless rows carry actuals")
	}
	// Stable JSON: deterministic field order and repeatable bytes.
	a, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(res.Rows())
	if !bytes.Equal(a, b) {
		t.Error("row encoding not stable across calls")
	}
	if !bytes.Contains(a, []byte(`"target_cores":512`)) || !bytes.Contains(a, []byte(`"predicted_seconds"`)) {
		t.Errorf("unexpected row encoding %s", a)
	}
}

// TestEngineObservability checks the Stats/Registry surface: cache and pool
// figures, per-stage span summaries, and the pipeline metrics recorded into
// the engine's registry by the stages beneath it.
func TestEngineObservability(t *testing.T) {
	e := NewEngine(WithParallelism(3))
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	if _, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt); err != nil {
		t.Fatal(err)
	}
	if _, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt); err != nil {
		t.Fatal(err)
	}
	prof, err := e.Profile(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict(ctx, PredictRequest{Signature: sig, App: app, Profile: prof}); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Collections != 1 || st.CollectionHits != 2 {
		t.Errorf("collections %d hits %d, want 1 and 2", st.Collections, st.CollectionHits)
	}
	if st.ProfileBuilds != 1 || st.Predictions != 1 {
		t.Errorf("builds %d predictions %d, want 1 and 1", st.ProfileBuilds, st.Predictions)
	}
	if st.PoolCapacity != 3 {
		t.Errorf("pool capacity %d, want 3", st.PoolCapacity)
	}
	stages := map[string]StageSummary{}
	for _, s := range st.Stages {
		stages[s.Name] = s
	}
	if s := stages["engine.collect"]; s.Count != 3 || s.TotalSeconds <= 0 {
		t.Errorf("engine.collect summary %+v, want 3 occurrences", s)
	}
	for _, name := range []string{"engine.profile", "engine.predict", "pebil.collect", "multimaps.sweep", "psins.replay"} {
		if stages[name].Count == 0 {
			t.Errorf("stage %q not recorded; have %v", name, st.Stages)
		}
	}

	// The stages' own metrics land in this engine's registry, not the
	// process-wide default.
	snap := e.Registry().Snapshot()
	vals := map[string]float64{}
	for _, m := range snap.Metrics {
		vals[m.Name] = m.Value
	}
	for _, name := range []string{"pebil.blocks", "multimaps.refs", "psins.events", "engine.pool.capacity"} {
		if vals[name] <= 0 {
			t.Errorf("metric %q missing or zero in engine registry", name)
		}
	}
	if vals["engine.predictions"] != 1 {
		t.Errorf("engine.predictions = %g, want 1", vals["engine.predictions"])
	}

	// WithRegistry(nil) disables collection entirely.
	off := NewEngine(WithRegistry(nil))
	if _, err := off.CollectSignature(ctx, app, 64, cfg, smallOpt); err != nil {
		t.Fatal(err)
	}
	if off.Registry() != nil {
		t.Error("disabled engine exposes a registry")
	}
	if st := off.Stats(); st.Collections != 1 || st.Stages != nil {
		t.Errorf("disabled engine stats %+v", st)
	}
}

func TestSentinelErrors(t *testing.T) {
	e := NewEngine()
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	prof, err := e.Profile(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// ErrNoTraces: a signature without trace files cannot be predicted.
	empty := &Signature{App: app.Name(), CoreCount: 64, Machine: cfg.Name}
	if _, err := e.Predict(ctx, PredictRequest{Signature: empty, App: app, Profile: prof}); !errors.Is(err, ErrNoTraces) {
		t.Errorf("empty signature: %v, want ErrNoTraces", err)
	}

	// ErrMachineMismatch: signature and profile for different machines.
	sig, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	wrong := *sig
	wrong.Machine = "kraken"
	if _, err := e.Predict(ctx, PredictRequest{Signature: &wrong, App: app, Profile: prof}); !errors.Is(err, ErrMachineMismatch) {
		t.Errorf("mismatched machines: %v, want ErrMachineMismatch", err)
	}

	// ErrMachineMismatch also covers mixed extrapolation inputs.
	in128, err := e.CollectSignature(ctx, app, 128, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	in256, err := e.CollectSignature(ctx, app, 256, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	mixed := *in128
	mixed.Machine = "kraken"
	mixed.Traces = append([]Trace(nil), in128.Traces...)
	for i := range mixed.Traces {
		mixed.Traces[i].Machine = "kraken"
	}
	if _, err := e.Extrapolate(ctx, []*Signature{sig, &mixed, in256}, 512, ExtrapOptions{}); !errors.Is(err, ErrMachineMismatch) {
		t.Errorf("mixed inputs: %v, want ErrMachineMismatch", err)
	}

	// ErrRankOutOfRange: selecting a rank ≥ core count during collection.
	col, err := pebil.NewCollector()
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	if _, err := col.Collect(ctx, app, 64, cfg, []int{64},
		pebil.CollectorConfig{SampleRefs: smallOpt.SampleRefs, MaxWarmRefs: smallOpt.MaxWarmRefs}); !errors.Is(err, ErrRankOutOfRange) {
		t.Errorf("rank 64 of 64: %v, want ErrRankOutOfRange", err)
	}

	// ErrEmptyWorkload: the facade re-export matches what pebil wraps.
	wrapped := fmt.Errorf("pebil: shared collection: %w", pebil.ErrEmptyWorkload)
	if !errors.Is(wrapped, ErrEmptyWorkload) {
		t.Error("ErrEmptyWorkload re-export does not match pebil's sentinel")
	}
}

func TestExtrapOptionsValidate(t *testing.T) {
	if err := (ExtrapOptions{}).Validate(); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
	if err := (ExtrapOptions{MinInputs: 1}).Validate(); err == nil {
		t.Error("MinInputs 1 accepted")
	}
	if err := (ExtrapOptions{Forms: []Form{nil}}).Validate(); err == nil {
		t.Error("nil form accepted")
	}
	// The engine rejects bad options before touching the inputs.
	e := NewEngine()
	if _, err := e.Extrapolate(context.Background(), nil, 512, ExtrapOptions{MinInputs: 1}); err == nil {
		t.Error("Extrapolate with bad options accepted")
	}
}

// TestEngineDefaultCollectOptions checks WithCollectOptions: a zero
// CollectOptions request adopts the engine default, and the two spellings
// share one cache entry.
func TestEngineDefaultCollectOptions(t *testing.T) {
	e := NewEngine(WithCollectOptions(smallOpt))
	ctx := context.Background()
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	a, err := e.CollectSignature(ctx, app, 64, cfg, CollectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.CollectSignature(ctx, app, 64, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("zero options and explicit default produced distinct cache entries")
	}
	if st := e.Stats(); st.Collections != 1 {
		t.Errorf("%d collections, want 1", st.Collections)
	}
}

// TestPredictRequestVariants checks that the replay and timeline
// attachments of Engine.Predict agree with the plain prediction (the
// single-request replacement for the removed package-level
// Predict/PredictDetailed/PredictTimeline trio).
func TestPredictRequestVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("variant round-trip in -short mode")
	}
	app := testApp(t, "stencil3d")
	cfg := testMachine(t, "bluewaters")
	sig, err := CollectSignature(app, 64, cfg, smallOpt)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := BuildProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	e := DefaultEngine()
	pred, err := e.Predict(ctx, PredictRequest{Signature: sig, Profile: prof, App: app})
	if err != nil {
		t.Fatal(err)
	}
	det, err := e.Predict(ctx, PredictRequest{Signature: sig, Profile: prof, App: app, WithReplay: true})
	if err != nil {
		t.Fatal(err)
	}
	if det.Replay == nil || det.Runtime != pred.Runtime {
		t.Error("WithReplay prediction disagrees with the plain one")
	}
	tlPred, err := e.Predict(ctx, PredictRequest{Signature: sig, Profile: prof, App: app, WithTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if tlPred.Timeline == nil || tlPred.Runtime != pred.Runtime {
		t.Error("WithTimeline prediction disagrees with the plain one")
	}
}
