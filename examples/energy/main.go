// Energy demonstrates the methodology's second motivation: the feature
// vector captures what matters "for both performance and energy". An
// extrapolated 8192-core trace — never collected — prices the energy of the
// dominant task at scale and drives a DVFS sweep that finds the
// energy-optimal core frequency for the (memory-bound) workload, following
// the PMaC group's frequency-scaling work the paper builds on.
//
// Run with: go run ./examples/energy
package main

import (
	"fmt"
	"log"

	"tracex"
)

func main() {
	app, err := tracex.LoadApp("uh3d")
	if err != nil {
		log.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := tracex.BuildProfile(target)
	if err != nil {
		log.Fatal(err)
	}
	opt := tracex.CollectOptions{SampleRefs: 200_000}

	fmt.Println("collecting UH3D at 1024/2048/4096 cores and extrapolating to 8192...")
	inputs, err := tracex.CollectInputs(app, []int{1024, 2048, 4096}, target, opt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tracex.Extrapolate(inputs, 8192, tracex.ExtrapOptions{})
	if err != nil {
		log.Fatal(err)
	}

	model := tracex.DefaultEnergyModel(target)
	rep, err := tracex.EstimateEnergy(res.Signature, prof, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndominant-task energy at 8192 cores (from the extrapolated trace):\n")
	fmt.Printf("  computation %.1f s, %.1f J, average %.1f W/core\n",
		rep.Seconds, rep.Joules, rep.AvgWatts)
	fmt.Println("  per block:")
	for _, b := range rep.Blocks {
		fmt.Printf("    block %-3d %8.2f s %10.1f J %6.1f W\n", b.BlockID, b.Seconds, b.Joules, b.Watts)
	}

	scales := []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}
	pts, err := tracex.DVFSSweep(res.Signature, prof, model, scales)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDVFS sweep (relative frequency → time, energy, EDP):\n")
	fmt.Printf("%8s %10s %12s %14s\n", "f/f₀", "time (s)", "energy (J)", "EDP (J·s)")
	for _, p := range pts {
		fmt.Printf("%8.2f %10.1f %12.1f %14.1f\n", p.Scale, p.Seconds, p.Joules, p.EDP)
	}
	minE, minEDP := tracex.OptimalFrequency(pts)
	fmt.Printf("\nenergy-optimal frequency: %.2f×nominal (%.1f J)\n", minE.Scale, minE.Joules)
	fmt.Printf("EDP-optimal frequency:    %.2f×nominal (%.1f J·s)\n", minEDP.Scale, minEDP.EDP)
}
