// Clustering demonstrates the paper's Future Work (§VI) extension: instead
// of extrapolating only the slowest MPI task's trace, cluster the tasks by
// their feature vectors (k-means), pick a "centroid" representative per
// cluster, and extrapolate each representative — giving per-cluster trace
// files at the target scale.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"tracex"
)

func main() {
	app, err := tracex.LoadApp("uh3d")
	if err != nil {
		log.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		log.Fatal(err)
	}
	opt := tracex.CollectOptions{SampleRefs: 150_000}

	// Collect signatures with one trace per load class at each input count.
	counts := []int{1024, 2048, 4096}
	fmt.Printf("collecting UH3D signatures (%d load classes) at %v cores...\n",
		app.NumClasses(), counts)
	inputs, err := tracex.CollectInputs(app, counts, target, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Cluster the ranks of the smallest run.
	k := app.NumClasses()
	rc, err := tracex.ClusterRanks(inputs[0], k, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means over %d traced ranks found %d clusters (inertia %.4g, %d iterations):\n",
		len(inputs[0].Traces), k, rc.KMeans.Inertia, rc.KMeans.Iterations)
	for c, ranks := range rc.Clusters {
		fmt.Printf("  cluster %d: ranks %v, representative %d\n", c, ranks, rc.Representative[c])
	}

	// Extrapolate each cluster representative's trace series to 8192 cores.
	const targetCount = 8192
	fmt.Printf("\nextrapolating each centroid trace to %d cores:\n", targetCount)
	for c, rep := range rc.Representative {
		sub := make([]*tracex.Signature, len(inputs))
		for i, sig := range inputs {
			for j := range sig.Traces {
				if sig.Traces[j].Rank == rep {
					sub[i] = &tracex.Signature{
						App:       sig.App,
						CoreCount: sig.CoreCount,
						Machine:   sig.Machine,
						Traces:    []tracex.Trace{sig.Traces[j]},
					}
				}
			}
		}
		res, err := tracex.Extrapolate(sub, targetCount, tracex.ExtrapOptions{})
		if err != nil {
			log.Fatal(err)
		}
		tr := &res.Signature.Traces[0]
		fmt.Printf("  cluster %d (rank %d): %d blocks, %.4g total memory ops\n",
			c, rep, len(tr.Blocks), tr.TotalMemOps())
	}
	fmt.Println("\neach cluster now has its own target-scale trace file, replacing")
	fmt.Println("the single slowest-task vector the base methodology scales from.")
}
