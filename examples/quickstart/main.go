// Quickstart walks the whole trace-extrapolation pipeline on a small
// stencil application at laptop-friendly scale:
//
//  1. build a machine profile with the MultiMAPS benchmark,
//  2. collect application signatures at three small core counts
//     (instrumentation emulation + on-the-fly cache simulation, Figure 2),
//  3. extrapolate the dominant task's trace to a larger core count that was
//     never traced (Section IV),
//  4. predict the large-scale runtime from both the extrapolated and an
//     actually-collected trace (Table I's comparison), and
//  5. check both against the detailed execution simulation.
//
// Everything runs through a tracex.Engine: the three input collections fan
// out across the worker pool, repeated requests are served from the
// engine's caches, and Ctrl-C cancels the simulations promptly.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"syscall"

	"tracex"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng := tracex.NewEngine(
		tracex.WithCollectOptions(tracex.CollectOptions{SampleRefs: 200_000}),
	)
	defer eng.Close()

	app, err := tracex.LoadApp("stencil3d")
	if err != nil {
		log.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== 1. probing the target machine with MultiMAPS")
	prof, err := eng.Profile(ctx, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   %d bandwidth surface points for %s\n", len(prof.Surface), target.Name)

	fmt.Println("== 2. collecting signatures at 64, 128 and 256 cores")
	inputs, err := eng.CollectInputs(ctx, app, []int{64, 128, 256}, target, tracex.CollectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, sig := range inputs {
		dom := sig.DominantTrace()
		fmt.Printf("   %4d cores: %d blocks on dominant rank %d\n",
			sig.CoreCount, len(dom.Blocks), dom.Rank)
	}

	fmt.Println("== 3. extrapolating to 512 cores")
	res, err := eng.Extrapolate(ctx, inputs, 512, tracex.ExtrapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.Fits {
		if f.Element == "mem_ops" {
			fmt.Printf("   block %d mem_ops: %s fit → %.4g\n", f.BlockID, f.Form, f.Extrapolated)
		}
	}

	fmt.Println("== 4. predicting the 512-core runtime")
	collected, err := eng.CollectSignature(ctx, app, 512, target, tracex.CollectOptions{})
	if err != nil {
		log.Fatal(err)
	}
	preds, err := eng.PredictMany(ctx, []tracex.PredictRequest{
		{Signature: res.Signature, App: app, Profile: prof},
		{Signature: collected, App: app, Profile: prof},
	})
	if err != nil {
		log.Fatal(err)
	}
	predExtrap, predColl := preds[0], preds[1]

	fmt.Println("== 5. ground truth from the detailed execution simulation")
	measured, err := eng.Measure(ctx, app, 512, target, tracex.CollectOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %10s %10s\n", "", "runtime(s)", "error")
	pct := func(x float64) string {
		return fmt.Sprintf("%.1f%%", 100*math.Abs(x-measured.Runtime)/measured.Runtime)
	}
	fmt.Printf("%-28s %10.3f %10s\n", "prediction (extrapolated)", predExtrap.Runtime, pct(predExtrap.Runtime))
	fmt.Printf("%-28s %10.3f %10s\n", "prediction (collected)", predColl.Runtime, pct(predColl.Runtime))
	fmt.Printf("%-28s %10.3f %10s\n", "measured (detailed sim)", measured.Runtime, "-")
}
