// Cachedesign reproduces the paper's Table III use case: exploring the
// optimal cache structure for an application without the candidate system
// existing. Where the original flow re-simulated the application against
// every candidate hierarchy, this version collects ONE machine-independent
// reuse-distance signature per core count and sweeps the candidate
// geometries analytically: each candidate's per-block hit rates are derived
// from the same stored stack-distance histograms in microseconds, so adding
// an L1 size to the sweep costs no new simulation at all.
//
// The SPECFEM3D lookup-table block's residency flips between the small and
// large L1 candidates while staying flat in core count — exactly the signal
// a system architect would use to size the L1.
//
// Run with: go run ./examples/cachedesign
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"tracex"
)

func main() {
	app, err := tracex.LoadApp("specfem3d")
	if err != nil {
		log.Fatal(err)
	}
	base, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		log.Fatal(err)
	}

	// The candidate hierarchies: eight L1 sizes spanning the Table III pair
	// (12 KB and 56 KB among them). Everything else is held at the baseline.
	l1KBs := []int{8, 12, 16, 24, 32, 48, 56, 64}
	candidates := make([]tracex.MachineConfig, len(l1KBs))
	for i, kb := range l1KBs {
		c := base
		c.Name = fmt.Sprintf("candidate-%dKB-L1", kb)
		c.Caches = append([]tracex.CacheLevel(nil), base.Caches...)
		l1 := c.Caches[0]
		l1.SizeBytes = kb << 10
		// Keep 4 KB per way so the set count stays a power of two across
		// sizes.
		l1.Assoc = kb / 4
		if l1.Assoc < 1 {
			l1.Assoc = 1
		}
		c.Caches[0] = l1
		candidates[i] = c
	}

	counts := []int{96, 384, 1536, 6144}
	opt := tracex.CollectOptions{SampleRefs: 200_000}
	const lookupBlockID = 2

	fmt.Println("Table III (swept): flux_lookup_table L1 hit rate across candidate L1 sizes")
	fmt.Printf("%10s", "Core Count")
	for _, kb := range l1KBs {
		fmt.Printf("%9s", fmt.Sprintf("%d KB", kb))
	}
	fmt.Println()
	for _, p := range counts {
		// One reuse-distance collection per core count...
		start := time.Now()
		rs, err := tracex.CollectReuse(app, p, opt)
		if err != nil {
			log.Fatal(err)
		}
		collectTime := time.Since(start)
		// ...then every candidate geometry is served from it analytically.
		start = time.Now()
		fmt.Printf("%10d", p)
		for _, sys := range candidates {
			sig, err := tracex.DeriveSignature(rs, app, sys)
			if err != nil {
				log.Fatal(err)
			}
			blk := sig.DominantTrace().BlockByID()[lookupBlockID]
			fmt.Printf("%8.1f%%", 100*blk.FV.HitRates[0])
		}
		sweepTime := time.Since(start)
		fmt.Printf("   (collected in %v, %d-geometry sweep in %v)\n",
			collectTime.Round(time.Millisecond), len(candidates), sweepTime.Round(time.Millisecond))
	}

	// The architect's conclusion: compare predicted runtimes on the Table
	// III pair at the largest scale, both signatures derived from the one
	// 6144-core reuse profile (already cached by the loop above).
	rs, err := tracex.CollectReuse(app, 6144, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npredicted 6144-core runtime on the Table III candidates:")
	for _, name := range []string{"systemA-12KB-L1", "systemB-56KB-L1"} {
		sys, err := tracex.LoadMachine(name)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := tracex.BuildProfile(sys)
		if err != nil {
			log.Fatal(err)
		}
		sig, err := tracex.DeriveSignature(rs, app, sys)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := tracex.DefaultEngine().Predict(context.Background(),
			tracex.PredictRequest{Signature: sig, Profile: prof, App: app})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %8.1f s\n", sys.Name, pred.Runtime)
	}
}
