// Cachedesign reproduces the paper's Table III use case: exploring the
// optimal cache structure for an application without the candidate system
// existing. Trace data is collected against two hypothetical targets that
// differ only in L1 size (12 KB vs 56 KB); the SPECFEM3D lookup-table
// block's residency flips between them while staying flat in core count —
// exactly the signal a system architect would use to size the L1.
//
// Run with: go run ./examples/cachedesign
package main

import (
	"context"
	"fmt"
	"log"

	"tracex"
)

func main() {
	app, err := tracex.LoadApp("specfem3d")
	if err != nil {
		log.Fatal(err)
	}
	sysA, err := tracex.LoadMachine("systemA-12KB-L1")
	if err != nil {
		log.Fatal(err)
	}
	sysB, err := tracex.LoadMachine("systemB-56KB-L1")
	if err != nil {
		log.Fatal(err)
	}
	counts := []int{96, 384, 1536, 6144}
	opt := tracex.CollectOptions{SampleRefs: 200_000}

	fmt.Println("Table III: flux_lookup_table L1 hit rate on two candidate systems")
	fmt.Printf("%10s %16s %16s\n", "Core Count", "A (12 KB L1)", "B (56 KB L1)")
	const lookupBlockID = 2
	for _, p := range counts {
		var rates [2]float64
		for i, sys := range []tracex.MachineConfig{sysA, sysB} {
			sig, err := tracex.CollectSignature(app, p, sys, opt)
			if err != nil {
				log.Fatal(err)
			}
			blk := sig.DominantTrace().BlockByID()[lookupBlockID]
			rates[i] = blk.FV.HitRates[0]
		}
		fmt.Printf("%10d %15.1f%% %15.1f%%\n", p, 100*rates[0], 100*rates[1])
	}

	// The architect's conclusion: compare predicted runtimes on the two
	// candidates at the largest scale.
	fmt.Println("\npredicted 6144-core runtime on each candidate:")
	for _, sys := range []tracex.MachineConfig{sysA, sysB} {
		prof, err := tracex.BuildProfile(sys)
		if err != nil {
			log.Fatal(err)
		}
		sig, err := tracex.CollectSignature(app, 6144, sys, opt)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := tracex.DefaultEngine().Predict(context.Background(),
			tracex.PredictRequest{Signature: sig, Profile: prof, App: app})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %8.1f s\n", sys.Name, pred.Runtime)
	}
}
