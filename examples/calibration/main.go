// Calibration demonstrates the machine-profile inverse problem: given block
// timings observed on a real system (here: the detailed simulation of the
// Blue Waters model), recover an uncertain machine parameter — the
// memory-level parallelism — starting from a deliberately wrong prior. This
// is the fitted-memory-model workflow of the paper's reference [27] (Tikir
// et al.), realized with deterministic coordinate descent.
//
// Run with: go run ./examples/calibration
package main

import (
	"fmt"
	"log"

	"tracex"
)

func main() {
	truth, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		log.Fatal(err)
	}
	app, err := tracex.LoadApp("uh3d")
	if err != nil {
		log.Fatal(err)
	}

	// "Measure" block timings on the true machine: collect signatures and
	// time each block with the detailed model. In a real deployment these
	// observations come from hardware counters + wall clocks.
	fmt.Println("gathering observed block timings on the true machine...")
	obs, err := observeBlocks(app, truth, []int{1024, 2048, 4096})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d observations\n", len(obs))

	// A procurement-time machine description with uncertain MLP and
	// sustained bandwidth.
	prior := truth
	prior.MLP = 2
	prior.MemBandwidthGBs = 16

	res, err := tracex.CalibrateMachine(prior, obs,
		[]tracex.MachineParameter{tracex.ParamMLP, tracex.ParamMemBandwidth}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntiming-model error: %.1f%% before → %.2f%% after calibration\n",
		100*res.Before, 100*res.After)
	fmt.Printf("recovered MLP:        %.2f (true %.1f)\n", res.Config.MLP, truth.MLP)
	fmt.Printf("recovered bandwidth:  %.2f GB/s (true %.1f)\n",
		res.Config.MemBandwidthGBs, truth.MemBandwidthGBs)
	fmt.Printf("calibration sweeps:   %d\n", res.Iterations)
	fmt.Println()
	fmt.Println("note the identifiability lesson: UH3D's latency-bound random")
	fmt.Println("gathers pin down MLP precisely, but they never saturate the")
	fmt.Println("memory bus, so the bandwidth parameter is unidentifiable from")
	fmt.Println("these observations and stays at its prior — calibrate each")
	fmt.Println("parameter with a workload that actually exercises it.")
}

// observeBlocks produces (counters, seconds) pairs for every block of the
// application at the given core counts on the true machine.
func observeBlocks(app *tracex.App, truth tracex.MachineConfig, counts []int) ([]tracex.Observation, error) {
	var obs []tracex.Observation
	for _, p := range counts {
		blockObs, err := tracex.ObserveBlocks(app, p, truth, tracex.CollectOptions{SampleRefs: 150_000})
		if err != nil {
			return nil, err
		}
		obs = append(obs, blockObs...)
	}
	return obs, nil
}
