// Specfem3d reproduces the paper's SPECFEM3D_GLOBE experiment at full
// scale: signatures collected at 96, 384 and 1536 cores are extrapolated to
// 6144 cores, and the prediction made from the extrapolated trace is
// compared against the prediction made from an actually-collected 6144-core
// trace and the measured runtime (Table I, rows 1-2), including the
// per-element accuracy audit of the influential blocks (Section IV).
//
// Run with: go run ./examples/specfem3d
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"tracex"
)

func main() {
	app, err := tracex.LoadApp("specfem3d")
	if err != nil {
		log.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := tracex.BuildProfile(target)
	if err != nil {
		log.Fatal(err)
	}

	inputCounts := []int{96, 384, 1536}
	const targetCount = 6144
	opt := tracex.CollectOptions{}

	fmt.Printf("collecting SPECFEM3D signatures at %v cores on %s...\n", inputCounts, target.Name)
	inputs, err := tracex.CollectInputs(app, inputCounts, target, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("extrapolating to %d cores...\n", targetCount)
	res, err := tracex.Extrapolate(inputs, targetCount, tracex.ExtrapOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("selected canonical forms per block (mem_ops element):")
	for _, f := range res.Fits {
		if f.Element == "mem_ops" {
			fmt.Printf("  block %-2d %-12s → %.4g refs\n", f.BlockID, f.Form, f.Extrapolated)
		}
	}

	fmt.Printf("collecting the ground-truth %d-core signature...\n", targetCount)
	collected, err := tracex.CollectSignature(app, targetCount, target, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Section IV audit: every element of every influential block.
	errs, err := tracex.CompareTraces(&res.Signature.Traces[0], collected.DominantTrace())
	if err != nil {
		log.Fatal(err)
	}
	var maxErr float64
	var worst string
	for _, e := range errs {
		if e.Influential && e.AbsRelErr > maxErr {
			maxErr = e.AbsRelErr
			worst = e.Func + "/" + e.Element
		}
	}
	fmt.Printf("influential-element audit: max error %.1f%% (%s) — paper claims <20%%\n",
		100*maxErr, worst)

	predExtrap, err := tracex.DefaultEngine().Predict(context.Background(),
		tracex.PredictRequest{Signature: res.Signature, Profile: prof, App: app})
	if err != nil {
		log.Fatal(err)
	}
	predColl, err := tracex.DefaultEngine().Predict(context.Background(),
		tracex.PredictRequest{Signature: collected, Profile: prof, App: app})
	if err != nil {
		log.Fatal(err)
	}
	measured, err := tracex.Measure(app, targetCount, target, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nTable I (SPECFEM3D rows):\n")
	fmt.Printf("%-12s %6s %-8s %12s %8s\n", "Application", "Cores", "Trace", "Predicted(s)", "%Error")
	for _, row := range []struct {
		kind string
		t    float64
	}{{"Extrap.", predExtrap.Runtime}, {"Coll.", predColl.Runtime}} {
		fmt.Printf("%-12s %6d %-8s %12.1f %7.1f%%\n", "SPECFEM3D", targetCount, row.kind,
			row.t, 100*math.Abs(row.t-measured.Runtime)/measured.Runtime)
	}
	fmt.Printf("measured runtime: %.1f s\n", measured.Runtime)
}
