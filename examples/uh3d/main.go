// Uh3d reproduces the paper's UH3D magnetosphere-code experiment at full
// scale: signatures collected at 1024, 2048 and 4096 cores are extrapolated
// to 8192 cores (Table I, rows 3-4), and the extrapolated trace is then used
// the way the paper's Table II uses it — to read off how the target system's
// cache hit rates evolve for a single basic block as the application strong
// scales, without ever tracing the largest run.
//
// Run with: go run ./examples/uh3d
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"tracex"
)

func main() {
	app, err := tracex.LoadApp("uh3d")
	if err != nil {
		log.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := tracex.BuildProfile(target)
	if err != nil {
		log.Fatal(err)
	}

	inputCounts := []int{1024, 2048, 4096}
	const targetCount = 8192
	opt := tracex.CollectOptions{}

	fmt.Printf("collecting UH3D signatures at %v cores on %s...\n", inputCounts, target.Name)
	inputs, err := tracex.CollectInputs(app, inputCounts, target, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("extrapolating to %d cores...\n", targetCount)
	res, err := tracex.Extrapolate(inputs, targetCount, tracex.ExtrapOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Table II: the field_update block's hit rates across core counts —
	// the 8192-core row comes from the *extrapolated* trace.
	fmt.Println("\nTable II: field_update cache hit rates on the target system")
	fmt.Printf("%10s %8s %8s %8s %s\n", "Core Count", "L1 HR", "L2 HR", "L3 HR", "source")
	printRow := func(cores int, hr []float64, src string) {
		fmt.Printf("%10d %7.1f%% %7.1f%% %7.1f%% %s\n",
			cores, 100*hr[0], 100*hr[1], 100*hr[2], src)
	}
	const fieldUpdateID = 12
	for _, sig := range inputs {
		blk := sig.DominantTrace().BlockByID()[fieldUpdateID]
		printRow(sig.CoreCount, blk.FV.HitRates, "collected")
	}
	extrapBlk := res.Signature.Traces[0].BlockByID()[fieldUpdateID]
	printRow(targetCount, extrapBlk.FV.HitRates, "extrapolated")

	// Table I rows: predictions from both traces against measured.
	collected, err := tracex.CollectSignature(app, targetCount, target, opt)
	if err != nil {
		log.Fatal(err)
	}
	predExtrap, err := tracex.DefaultEngine().Predict(context.Background(),
		tracex.PredictRequest{Signature: res.Signature, Profile: prof, App: app})
	if err != nil {
		log.Fatal(err)
	}
	predColl, err := tracex.DefaultEngine().Predict(context.Background(),
		tracex.PredictRequest{Signature: collected, Profile: prof, App: app})
	if err != nil {
		log.Fatal(err)
	}
	measured, err := tracex.Measure(app, targetCount, target, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTable I (UH3D rows):\n")
	fmt.Printf("%-12s %6s %-8s %12s %8s\n", "Application", "Cores", "Trace", "Predicted(s)", "%Error")
	for _, row := range []struct {
		kind string
		t    float64
	}{{"Extrap.", predExtrap.Runtime}, {"Coll.", predColl.Runtime}} {
		fmt.Printf("%-12s %6d %-8s %12.1f %7.1f%%\n", "UH3D", targetCount, row.kind,
			row.t, 100*math.Abs(row.t-measured.Runtime)/measured.Runtime)
	}
	fmt.Printf("measured runtime: %.1f s\n", measured.Runtime)
}
