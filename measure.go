package tracex

import (
	"context"
	"fmt"

	"tracex/internal/cache"
	"tracex/internal/memsim"
	"tracex/internal/pebil"
	"tracex/internal/psins"
)

// Measure runs the detailed execution simulation of the application at the
// given core count on the target machine.
//
// It is a wrapper over Engine.Measure on the default Engine with
// context.Background().
func Measure(app *App, cores int, target MachineConfig, opt CollectOptions) (*Prediction, error) {
	return DefaultEngine().Measure(context.Background(), app, cores, target, opt)
}

// measure is the detailed execution simulation behind Engine.Measure: the
// reproduction's stand-in for actually running and timing the application
// on real hardware (the paper's "real measured runtime"). Instead of
// interpolating a benchmark-derived bandwidth surface like the convolution,
// it prices every basic block directly from its cache-simulator accounting
// with the cycle-level memory timing model, then replays the full MPI event
// trace. The counters come from the engine's shared collector arena.
func measure(ctx context.Context, col *pebil.Collector, app *App, cores int, target MachineConfig, opt CollectOptions) (*Prediction, error) {
	counters, err := col.Counters(ctx, app, cores, target, opt)
	if err != nil {
		return nil, err
	}
	model, err := memsim.New(target)
	if err != nil {
		return nil, err
	}
	// Per-block seconds for the dominant rank, priced from the sampled
	// counters scaled to the block's full reference count. The snapshots are
	// priced in one batch, then scaled per block.
	snaps := make([]cache.Counters, len(counters))
	for i := range counters {
		if counters[i].Counters.Refs == 0 {
			return nil, fmt.Errorf("tracex: block %s has an empty sample", counters[i].Spec.Func)
		}
		snaps[i] = counters[i].Counters
	}
	blockCycles, err := model.BlockCycles(snaps)
	if err != nil {
		return nil, err
	}
	blockSeconds := make(map[uint64]float64, len(counters))
	var memTotal, fpTotal float64
	for i := range counters {
		bc := &counters[i]
		scale := bc.Refs / float64(bc.Counters.Refs)
		memCycles := blockCycles[i] * scale
		fpCycles := model.FPCycles(bc.Refs*bc.Spec.FPPerRef, bc.Spec.ILP)
		longer, shorter := memCycles, fpCycles
		if shorter > longer {
			longer, shorter = shorter, longer
		}
		cycles := longer + (1-psins.OverlapFactor)*shorter
		blockSeconds[bc.Spec.ID] = model.Seconds(cycles)
		memTotal += model.Seconds(memCycles)
		fpTotal += model.Seconds(fpCycles)
	}
	prog, err := app.Program(cores)
	if err != nil {
		return nil, err
	}
	net, err := psins.NewNetwork(target.Network)
	if err != nil {
		return nil, err
	}
	cost := func(rank int, blockID uint64, share float64) (float64, error) {
		t, ok := blockSeconds[blockID]
		if !ok {
			return 0, fmt.Errorf("tracex: event references unknown block %d", blockID)
		}
		return t * share * app.LoadFactor(rank), nil
	}
	res, err := psins.ReplayTraced(ctx, prog, net, cost, nil)
	if err != nil {
		return nil, err
	}
	return &Prediction{
		App:            app.Name(),
		CoreCount:      cores,
		Machine:        target.Name,
		Runtime:        res.Runtime,
		ComputeSeconds: res.ComputeTime[0],
		CommSeconds:    res.CommTime[0],
		MemSeconds:     memTotal,
		FPSeconds:      fpTotal,
	}, nil
}
