// Benchmarks for the persistent signature store's headline trade-off:
// collecting a signature (streaming the simulators) vs reading the same
// signature back from disk after a restart. The Table-I UH3D workload at
// its input scale, with reduced sampling so the cold path stays
// benchmarkable; the cold/warm ratio is the store's value proposition
// (see EXPERIMENTS.md).
package tracex_test

import (
	"context"
	"testing"

	"tracex"
)

const (
	warmStartApp   = "uh3d"
	warmStartCores = 1024
)

var warmStartOpt = tracex.CollectOptions{
	SampleRefs:  60_000,
	MaxWarmRefs: 150_000,
}

func warmStartFixtures(b *testing.B) (*tracex.App, tracex.MachineConfig) {
	b.Helper()
	app, err := tracex.LoadApp(warmStartApp)
	if err != nil {
		b.Fatal(err)
	}
	cfg, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		b.Fatal(err)
	}
	return app, cfg
}

// BenchmarkStoreWarmStartCold is the baseline: no store, caching disabled,
// every iteration re-simulates the collection.
func BenchmarkStoreWarmStartCold(b *testing.B) {
	app, cfg := warmStartFixtures(b)
	eng := tracex.NewEngine(tracex.WithCacheSize(0))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.CollectSignatureFrom(ctx, app, warmStartCores, cfg, warmStartOpt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWarmStartDisk measures the restarted process: a fresh
// engine (empty memory cache) over a populated store directory serves the
// collection from disk. Each iteration builds a new engine, so the memo
// tier never answers and every read is a real decode.
func BenchmarkStoreWarmStartDisk(b *testing.B) {
	app, cfg := warmStartFixtures(b)
	dir := b.TempDir()
	seed := tracex.NewEngine(tracex.WithStore(dir))
	ctx := context.Background()
	if _, prov, err := seed.CollectSignatureFrom(ctx, app, warmStartCores, cfg, warmStartOpt); err != nil {
		b.Fatal(err)
	} else if prov != tracex.FromCollected {
		b.Fatalf("seeding collection came from %q", prov)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := tracex.NewEngine(tracex.WithStore(dir))
		_, prov, err := eng.CollectSignatureFrom(ctx, app, warmStartCores, cfg, warmStartOpt)
		if err != nil {
			b.Fatal(err)
		}
		if prov != tracex.FromDisk {
			b.Fatalf("iteration %d served from %q, want disk", i, prov)
		}
	}
}
