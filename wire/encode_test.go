package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"tracex"
)

// checkSame asserts the append encoder and encoding/json produce identical
// bytes for v (an AppendMarshaler).
func checkSame(t *testing.T, v AppendMarshaler) {
	t.Helper()
	want, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	got := v.AppendJSON(nil)
	if !bytes.Equal(got, want) {
		t.Errorf("AppendJSON diverges from encoding/json:\n got: %s\nwant: %s", got, want)
	}
}

// TestAppendJSONMatchesEncodingJSON pins the append encoders byte-identical
// to encoding/json across representative and adversarial values: the server
// can switch a route between the two encoders without changing the wire
// contract.
func TestAppendJSONMatchesEncodingJSON(t *testing.T) {
	floats := []float64{
		0, 1, -1, 1.5, -1.5, 0.1, 1e-7, -1e-7, 9.999999e20, 1e21, -1e21,
		1e-300, 1e300, 123456.789, 1.0 / 3.0, math.SmallestNonzeroFloat64,
		math.MaxFloat64, 5e-324, 2.2250738585072014e-308, 1e-6, 0.000001,
	}
	strs := []string{
		"", "uh3d", "bluewaters", "a b c", `quote"back\slash`,
		"tabs\tand\nnewlines\rhere", "html<&>escapes", "\x00\x01\x1f",
		"unicode: héllo, 世界", "bad utf8: \xff\xfe ok", "line seps:   ",
		strings.Repeat("x", 300),
	}
	// fin replaces non-finite derived values (JSON cannot represent them
	// and json.Marshal rejects them, so they are outside the contract).
	fin := func(f float64) float64 {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return 0
		}
		return f
	}
	for _, f := range floats {
		for i, s := range strs {
			checkSame(t, &PredictResponse{
				App: s, Cores: i*7 - 3, Machine: strs[(i+1)%len(strs)],
				RuntimeSeconds: f, ComputeSeconds: -f, CommSeconds: f / 3,
				MemSeconds: fin(f * 1e-9), FPSeconds: fin(f * 1e9),
				From: strs[(i+2)%len(strs)], Model: strs[(i+3)%len(strs)],
				Sampling: strs[(i+4)%len(strs)],
			})
		}
	}

	// omitempty behavior: From, Model, Sampling and Intervals absent when
	// empty.
	b := (&PredictResponse{App: "a", Machine: "m"}).AppendJSON(nil)
	if bytes.Contains(b, []byte(`"from"`)) || bytes.Contains(b, []byte(`"model"`)) {
		t.Errorf("empty from/model not omitted: %s", b)
	}
	if bytes.Contains(b, []byte(`"sampling"`)) {
		t.Errorf("empty sampling not omitted: %s", b)
	}
	if bytes.Contains(b, []byte(`"intervals"`)) {
		t.Errorf("empty intervals not omitted: %s", b)
	}
	for _, pr := range []*PredictResponse{
		{App: "a", Machine: "m", Intervals: []tracex.Interval{}},
		{App: "a", Machine: "m", Intervals: []tracex.Interval{{Level: 0.9, Lo: 1.5, Hi: 2.5}}},
		{App: "a", Machine: "m", From: "inline", Intervals: []tracex.Interval{
			{Level: 0.5, Lo: 9.25, Hi: 10.75}, {Level: 0.9, Lo: 7.5, Hi: 12.5}, {Level: 0.95, Lo: 1e-7, Hi: 1e21},
		}},
	} {
		checkSame(t, pr)
	}

	// Study responses, including nil vs empty slices (null vs []) and
	// interval-carrying rows.
	for _, sr := range []*StudyResponse{
		{},
		{App: "uh3d", Machine: "kraken"},
		{App: "uh3d", Machine: "kraken", InputCounts: []int{}, Rows: []tracex.StudyRow{}},
		{App: "uh3d", Machine: "kraken", InputCounts: []int{64, 128, 256}, Rows: []tracex.StudyRow{
			{TargetCores: 512, PredictedSeconds: 10.5, ActualSeconds: 10, AbsRelErr: 0.05},
			{TargetCores: 8192, PredictedSeconds: 1234.5678},
		}},
		{App: "uh3d", Machine: "kraken", InputCounts: []int{1024}, Rows: []tracex.StudyRow{
			{TargetCores: 8192, PredictedSeconds: 361.4, Intervals: []tracex.Interval{
				{Level: 0.5, Lo: 353.0, Hi: 369.8}, {Level: 0.9, Lo: 308.6, Hi: 414.3},
			}},
			{TargetCores: 16384, PredictedSeconds: 700, Intervals: []tracex.Interval{}},
		}},
	} {
		checkSame(t, sr)
	}
}

// TestAppendJSONMatchesRandomized fuzzes the encoders against
// encoding/json with random floats and byte strings (valid and invalid
// UTF-8 alike).
func TestAppendJSONMatchesRandomized(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	randStr := func() string {
		n := rng.IntN(24)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.IntN(256))
		}
		return string(b)
	}
	randFloat := func() float64 {
		// Mix magnitudes so both 'f' and 'e' formats are exercised.
		f := rng.NormFloat64() * math.Pow(10, float64(rng.IntN(50)-25))
		if rng.IntN(8) == 0 {
			f = 0
		}
		return f
	}
	randIntervals := func() []tracex.Interval {
		if rng.IntN(2) == 0 {
			return nil
		}
		ivs := make([]tracex.Interval, rng.IntN(4))
		for i := range ivs {
			ivs[i] = tracex.Interval{Level: randFloat(), Lo: randFloat(), Hi: randFloat()}
		}
		return ivs
	}
	for i := 0; i < 2000; i++ {
		checkSame(t, &PredictResponse{
			App: randStr(), Cores: rng.IntN(1 << 20), Machine: randStr(),
			RuntimeSeconds: randFloat(), ComputeSeconds: randFloat(),
			CommSeconds: randFloat(), MemSeconds: randFloat(), FPSeconds: randFloat(),
			From: randStr(), Model: randStr(), Sampling: randStr(),
			Intervals: randIntervals(),
		})
		rows := make([]tracex.StudyRow, rng.IntN(4))
		for j := range rows {
			rows[j] = tracex.StudyRow{
				TargetCores: rng.IntN(1 << 16), PredictedSeconds: randFloat(),
				ActualSeconds: randFloat(), AbsRelErr: randFloat(),
				Intervals: randIntervals(),
			}
		}
		counts := make([]int, rng.IntN(4))
		for j := range counts {
			counts[j] = rng.IntN(1 << 16)
		}
		checkSame(t, &StudyResponse{App: randStr(), Machine: randStr(), InputCounts: counts, Rows: rows})
	}
}

// TestAppendJSONZeroAllocs is the acceptance alloc guard: encoding a
// predict response into a pre-sized buffer performs zero allocations, and
// the study encoder likewise.
func TestAppendJSONZeroAllocs(t *testing.T) {
	pr := &PredictResponse{
		App: "uh3d", Cores: 8192, Machine: "bluewaters",
		RuntimeSeconds: 1234.5678, ComputeSeconds: 1000.1, CommSeconds: 234.4678,
		MemSeconds: 600.25, FPSeconds: 399.85, From: "memory", Model: "exact",
		Sampling: "adaptive:0.05,pilot=20000,min=20000,max=400000,cluster=on",
		Intervals: []tracex.Interval{
			{Level: 0.5, Lo: 1200.1, Hi: 1269.0}, {Level: 0.9, Lo: 1100.4, Hi: 1368.7},
			{Level: 0.95, Lo: 1000.9, Hi: 1468.2},
		},
	}
	buf := make([]byte, 0, 1024)
	if allocs := testing.AllocsPerRun(200, func() {
		buf = pr.AppendJSON(buf[:0])
	}); allocs != 0 {
		t.Errorf("PredictResponse.AppendJSON: %.1f allocs/op, want 0", allocs)
	}

	sr := &StudyResponse{
		App: "uh3d", Machine: "bluewaters", InputCounts: []int{1024, 2048, 4096},
		Rows: []tracex.StudyRow{
			{TargetCores: 8192, PredictedSeconds: 1234.5678, ActualSeconds: 1300, AbsRelErr: 0.0503,
				Intervals: []tracex.Interval{{Level: 0.9, Lo: 1100.4, Hi: 1368.7}}},
			{TargetCores: 16384, PredictedSeconds: 2400.25},
		},
	}
	if allocs := testing.AllocsPerRun(200, func() {
		buf = sr.AppendJSON(buf[:0])
	}); allocs != 0 {
		t.Errorf("StudyResponse.AppendJSON: %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkAppendPredictResponse measures the append encoder against
// encoding/json on the same value.
func BenchmarkAppendPredictResponse(b *testing.B) {
	pr := &PredictResponse{
		App: "uh3d", Cores: 8192, Machine: "bluewaters",
		RuntimeSeconds: 1234.5678, ComputeSeconds: 1000.1, CommSeconds: 234.4678,
		MemSeconds: 600.25, FPSeconds: 399.85, From: "memory", Model: "exact",
	}
	b.Run("append", func(b *testing.B) {
		buf := make([]byte, 0, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = pr.AppendJSON(buf[:0])
		}
	})
	b.Run("encoding_json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(pr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestDecodeStrict pins the canonical decoder's unknown-field rejection.
func TestDecodeStrict(t *testing.T) {
	var pr PredictRequest
	if err := DecodeStrict(strings.NewReader(`{"app":"uh3d","cores":64}`), &pr); err != nil {
		t.Fatalf("valid body rejected: %v", err)
	}
	if pr.App != "uh3d" || pr.Cores != 64 {
		t.Errorf("decoded %+v", pr)
	}
	if err := DecodeStrict(strings.NewReader(`{"app":"uh3d","coresx":64}`), &pr); err == nil {
		t.Error("unknown field accepted")
	}
}
