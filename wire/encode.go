package wire

import (
	"math"
	"strconv"
	"unicode/utf8"

	"tracex"
)

// This file implements allocation-free append-based encoders for the
// response types on the serving hot path. The output is byte-identical to
// encoding/json's (same float formatting, same HTML-safe string escaping,
// same omitempty behavior), pinned by TestAppendJSONMatchesEncodingJSON, so
// switching a handler between the two encoders can never change the wire
// contract. The encoders allocate only when the destination slice must
// grow: with a pre-sized buffer they run at 0 allocs/op (pinned by
// TestAppendJSONZeroAllocs).

// AppendMarshaler is implemented by wire types with an append-based JSON
// encoder. The server prefers it over encoding/json on the hot response
// path.
type AppendMarshaler interface {
	// AppendJSON appends the value's JSON encoding to dst and returns the
	// extended slice.
	AppendJSON(dst []byte) []byte
}

// AppendJSON appends r's JSON encoding to dst, byte-identical to
// json.Marshal(r).
func (r *PredictResponse) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"app":`...)
	dst = appendJSONString(dst, r.App)
	dst = append(dst, `,"cores":`...)
	dst = strconv.AppendInt(dst, int64(r.Cores), 10)
	dst = append(dst, `,"machine":`...)
	dst = appendJSONString(dst, r.Machine)
	dst = append(dst, `,"runtime_seconds":`...)
	dst = appendJSONFloat(dst, r.RuntimeSeconds)
	dst = append(dst, `,"compute_seconds":`...)
	dst = appendJSONFloat(dst, r.ComputeSeconds)
	dst = append(dst, `,"comm_seconds":`...)
	dst = appendJSONFloat(dst, r.CommSeconds)
	dst = append(dst, `,"mem_seconds":`...)
	dst = appendJSONFloat(dst, r.MemSeconds)
	dst = append(dst, `,"fp_seconds":`...)
	dst = appendJSONFloat(dst, r.FPSeconds)
	if r.From != "" {
		dst = append(dst, `,"from":`...)
		dst = appendJSONString(dst, r.From)
	}
	if r.Model != "" {
		dst = append(dst, `,"model":`...)
		dst = appendJSONString(dst, r.Model)
	}
	if r.Sampling != "" {
		dst = append(dst, `,"sampling":`...)
		dst = appendJSONString(dst, r.Sampling)
	}
	if len(r.Intervals) > 0 {
		dst = append(dst, `,"intervals":`...)
		dst = appendIntervals(dst, r.Intervals)
	}
	return append(dst, '}')
}

// appendIntervals appends a []tracex.Interval encoding. The callers emit
// it only under omitempty (len > 0), so the nil/empty distinction never
// reaches the wire.
func appendIntervals(dst []byte, ivs []tracex.Interval) []byte {
	if ivs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i := range ivs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"level":`...)
		dst = appendJSONFloat(dst, ivs[i].Level)
		dst = append(dst, `,"lo":`...)
		dst = appendJSONFloat(dst, ivs[i].Lo)
		dst = append(dst, `,"hi":`...)
		dst = appendJSONFloat(dst, ivs[i].Hi)
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

// AppendJSON appends r's JSON encoding to dst, byte-identical to
// json.Marshal(r).
func (r *StudyResponse) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"app":`...)
	dst = appendJSONString(dst, r.App)
	dst = append(dst, `,"machine":`...)
	dst = appendJSONString(dst, r.Machine)
	dst = append(dst, `,"input_counts":`...)
	dst = appendIntSlice(dst, r.InputCounts)
	dst = append(dst, `,"rows":`...)
	dst = appendStudyRows(dst, r.Rows)
	return append(dst, '}')
}

// appendIntSlice appends a []int encoding (null for a nil slice, matching
// encoding/json).
func appendIntSlice(dst []byte, xs []int) []byte {
	if xs == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i, x := range xs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(x), 10)
	}
	return append(dst, ']')
}

// appendStudyRows appends a []tracex.StudyRow encoding (null for nil).
func appendStudyRows(dst []byte, rows []tracex.StudyRow) []byte {
	if rows == nil {
		return append(dst, "null"...)
	}
	dst = append(dst, '[')
	for i := range rows {
		if i > 0 {
			dst = append(dst, ',')
		}
		r := &rows[i]
		dst = append(dst, `{"target_cores":`...)
		dst = strconv.AppendInt(dst, int64(r.TargetCores), 10)
		dst = append(dst, `,"predicted_seconds":`...)
		dst = appendJSONFloat(dst, r.PredictedSeconds)
		dst = append(dst, `,"actual_seconds":`...)
		dst = appendJSONFloat(dst, r.ActualSeconds)
		dst = append(dst, `,"abs_rel_err":`...)
		dst = appendJSONFloat(dst, r.AbsRelErr)
		if len(r.Intervals) > 0 {
			dst = append(dst, `,"intervals":`...)
			dst = appendIntervals(dst, r.Intervals)
		}
		dst = append(dst, '}')
	}
	return append(dst, ']')
}

// appendJSONFloat appends f exactly as encoding/json encodes a float64:
// shortest representation, 'f' format inside [1e-6, 1e21), 'e' outside with
// a minimal exponent. The pipeline never produces NaN or ±Inf (they are not
// representable in JSON and json.Marshal would fail); encode them as 0 so
// the append path cannot corrupt a response mid-buffer.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// encoding/json trims "e-0X" to "e-X".
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string exactly as encoding/json's
// default (HTML-escaping) encoder does: control characters, '"', '\\',
// '<', '>' and '&' are escaped, invalid UTF-8 becomes U+FFFD, and
// U+2028/U+2029 are escaped for JS embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
