package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeStrict drives the canonical strict decoder over arbitrary
// bodies for the predict/study request and response types — including the
// interval fields — and checks two invariants on every accepted body:
//
//  1. Differential re-encode: a decoded response re-encoded with the
//     zero-alloc AppendJSON encoder is byte-identical to encoding/json
//     (the same contract the randomized differential tests pin, but over
//     fuzz-discovered shapes).
//  2. Self-consistency: the re-encoded bytes decode strictly again —
//     nothing the encoder emits is an unknown field to the decoder, so
//     the interval fields cannot drift between the two sides.
func FuzzDecodeStrict(f *testing.F) {
	seeds := []string{
		`{"app":"uh3d","cores":8192,"machine":"kraken","runtime_seconds":361.4,"compute_seconds":300,"comm_seconds":61.4,"mem_seconds":200,"fp_seconds":100}`,
		`{"app":"uh3d","cores":8192,"machine":"kraken","runtime_seconds":361.4,"compute_seconds":300,"comm_seconds":61.4,"mem_seconds":200,"fp_seconds":100,"from":"inline","intervals":[{"level":0.5,"lo":353,"hi":369.8},{"level":0.9,"lo":308.6,"hi":414.3}]}`,
		`{"app":"uh3d","machine":"kraken","input_counts":[1024,2048,4096],"rows":[{"target_cores":8192,"predicted_seconds":361.4,"actual_seconds":361.1,"abs_rel_err":0.001,"intervals":[{"level":0.9,"lo":308.6,"hi":414.3}]}]}`,
		`{"app":"uh3d","cores":64,"machine":"kraken","sampling":"adaptive:0.05"}`,
		`{"app":"uh3d","cores":64,"machine":"kraken","sampling":"fixed:400000,warm=2000000"}`,
		`{"app":"uh3d","machine":"kraken","input_counts":[8,16],"target_cores":64,"sampling":"adaptive:0.1,pilot=5000,min=5000,max=50000,cluster=off"}`,
		`{"app":"uh3d","cores":8192,"machine":"kraken","runtime_seconds":361.4,"compute_seconds":300,"comm_seconds":61.4,"mem_seconds":200,"fp_seconds":100,"from":"collected","model":"exact","sampling":"adaptive:0.05,pilot=20000,min=20000,max=400000,cluster=on"}`,
		`{"app":"uh3d","cores":64,"machine":"kraken","intervals":true}`,
		`{"app":"uh3d","cores":64,"machine":"kraken","intervals":false}`,
		`{"app":"uh3d","cores":64,"machine":"kraken","intervals":null}`,
		`{"app":"uh3d","machine":"kraken","input_counts":[8,16],"target_cores":64,"intervals":true,"with_truth":true}`,
		`{"app":"uh3d","cores":64,"intervalz":true}`,
		`{"app":"uh3d","cores":64,"samplign":"fixed:400000"}`,
		`{"intervals":[{"level":0.9,"lo":1,"hi":2,"mid":1.5}]}`,
		`{"intervals":[]}`,
		`{"intervals":[{}]}`,
		`{"rows":[{"intervals":null}]}`,
		`null`, `[]`, `{}`, ``, `{"app":`, `{"cores":1e999}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var pr PredictResponse
		if err := DecodeStrict(bytes.NewReader(data), &pr); err == nil {
			checkReencode(t, &pr, func() AppendMarshaler { return new(PredictResponse) })
		}
		var sr StudyResponse
		if err := DecodeStrict(bytes.NewReader(data), &sr); err == nil {
			checkReencode(t, &sr, func() AppendMarshaler { return new(StudyResponse) })
		}
		// Requests have no append encoder; the decoder just must not
		// panic, and an accepted body must re-marshal.
		var preq PredictRequest
		if err := DecodeStrict(bytes.NewReader(data), &preq); err == nil {
			if _, err := json.Marshal(&preq); err != nil {
				t.Errorf("accepted predict request failed to re-marshal: %v", err)
			}
		}
		var sreq StudyRequest
		if err := DecodeStrict(bytes.NewReader(data), &sreq); err == nil {
			if _, err := json.Marshal(&sreq); err != nil {
				t.Errorf("accepted study request failed to re-marshal: %v", err)
			}
		}
	})
}

// checkReencode asserts the append encoder matches encoding/json on v and
// that its output is strictly decodable into a fresh value of v's type.
func checkReencode(t *testing.T, v AppendMarshaler, fresh func() AppendMarshaler) {
	t.Helper()
	want, err := json.Marshal(v)
	if err != nil {
		// Non-finite floats cannot round-trip through JSON; DecodeStrict
		// can never produce them, so a marshal failure here is a bug.
		t.Fatalf("decoded value failed to marshal: %v", err)
	}
	got := v.AppendJSON(nil)
	if !bytes.Equal(got, want) {
		t.Errorf("AppendJSON diverges from encoding/json:\n got: %s\nwant: %s", got, want)
	}
	if err := DecodeStrict(bytes.NewReader(got), fresh()); err != nil {
		t.Errorf("encoder output rejected by strict decoder: %v\nbody: %s", err, got)
	}
}

// TestDecodeStrictIntervalKnob pins the tri-state interval knob: absent,
// true and false must be distinguishable after decoding, and misspelled
// interval fields must be rejected.
func TestDecodeStrictIntervalKnob(t *testing.T) {
	var pr PredictRequest
	if err := DecodeStrict(strings.NewReader(`{"app":"a","cores":1}`), &pr); err != nil || pr.Intervals != nil {
		t.Errorf("absent knob: err=%v intervals=%v", err, pr.Intervals)
	}
	pr = PredictRequest{}
	if err := DecodeStrict(strings.NewReader(`{"app":"a","intervals":true}`), &pr); err != nil || pr.Intervals == nil || !*pr.Intervals {
		t.Errorf("true knob: err=%v intervals=%v", err, pr.Intervals)
	}
	pr = PredictRequest{}
	if err := DecodeStrict(strings.NewReader(`{"app":"a","intervals":false}`), &pr); err != nil || pr.Intervals == nil || *pr.Intervals {
		t.Errorf("false knob: err=%v intervals=%v", err, pr.Intervals)
	}
	var sreq StudyRequest
	if err := DecodeStrict(strings.NewReader(`{"app":"a","intervals":true}`), &sreq); err != nil || sreq.Intervals == nil || !*sreq.Intervals {
		t.Errorf("study knob: err=%v intervals=%v", err, sreq.Intervals)
	}
	if err := DecodeStrict(strings.NewReader(`{"app":"a","interval":true}`), &sreq); err == nil {
		t.Error("misspelled interval field accepted")
	}
	var resp PredictResponse
	if err := DecodeStrict(strings.NewReader(`{"app":"a","cores":1,"machine":"m","runtime_seconds":1,"compute_seconds":1,"comm_seconds":0,"mem_seconds":1,"fp_seconds":0,"intervals":[{"level":0.9,"lo":0.9,"hi":1.1}]}`), &resp); err != nil {
		t.Fatalf("interval response rejected: %v", err)
	}
	if len(resp.Intervals) != 1 || resp.Intervals[0].Level != 0.9 {
		t.Errorf("decoded intervals %+v", resp.Intervals)
	}
}
