// Package wire defines tracexd's versioned HTTP API: the JSON request and
// response bodies of every /v1 route, the structured error body every
// failure path renders, and the canonical encoders and decoders for those
// types. It is the single definition of the wire contract, imported by the
// server (internal/server), the typed client (tracex/client), the tracex
// CLI's JSON output paths and the tracexload traffic generator — so the
// daemon, its clients and its load harness cannot drift apart.
//
// Wire types are distinct from the library types so the HTTP contract can
// stay stable while the library evolves; field order is fixed by struct
// declaration, which makes the encodings golden-file testable. The package
// version is carried in the route paths (Path* constants): a breaking
// change mints /v2 routes and new types rather than mutating these.
package wire

import (
	"encoding/json"
	"io"

	"tracex"
)

// Version is the API version every Path* constant belongs to.
const Version = "v1"

// Route paths of the versioned API. The server registers its handlers on
// these constants and clients address them, so a path typo cannot split the
// two sides.
const (
	PathPredict     = "/v1/predict"
	PathStudy       = "/v1/study"
	PathExtrapolate = "/v1/extrapolate"
	PathSignatures  = "/v1/signatures"
	// PathSignaturePrefix prefixes GET/PUT /v1/signatures/{key}; append the
	// store key (a 64-hex content hash or "app@cores@machine").
	PathSignaturePrefix = "/v1/signatures/"
	PathApps            = "/v1/apps"
	PathMachines        = "/v1/machines"
	// PathFleetStatus reports ring membership, per-peer health and
	// replication progress on a fleet-configured daemon.
	PathFleetStatus = "/v1/fleet/status"
	// PathFleetSync is the warm-start replication diff: the requester posts
	// the store keys it has and receives the entries the responder holds
	// beyond them.
	PathFleetSync = "/v1/fleet/sync"
	PathHealthz   = "/healthz"
	PathReadyz    = "/readyz"
	PathMetrics   = "/metrics"
)

// Fleet shard modes (FleetStatusResponse.Mode and the tracexd -shard-mode
// flag): how a node serves a signature key the consistent-hash ring
// assigns to a peer.
const (
	// FleetModeFetch: the non-owner delegates the collection to the owner
	// and fetches the result, serving it with provenance "peer".
	FleetModeFetch = "fetch"
	// FleetModeRedirect: like fetch on the predict path, but a signature
	// GET for a remote-owned, locally-missing key answers 307 to the
	// owner instead of proxying the bytes.
	FleetModeRedirect = "redirect"
)

// PredictRequest is the body of POST /v1/predict. Either an inline
// Signature or an (App, Cores, Machine) triple must be supplied; with the
// triple, the server collects the signature first (the engine memoizes it).
type PredictRequest struct {
	// App names the proxy application (see GET /v1/apps). Optional with an
	// inline signature, where it defaults to the signature's application.
	App string `json:"app,omitempty"`
	// Machine names the target system (see GET /v1/machines). Required
	// when collecting; ignored with an inline signature.
	Machine string `json:"machine,omitempty"`
	// Cores is the core count to collect at. Required without a signature.
	Cores int `json:"cores,omitempty"`
	// SampleRefs tunes collection (references simulated per block; 0 =
	// server default).
	SampleRefs int `json:"sample_refs,omitempty"`
	// Model selects the cache model for collection: "exact" (default)
	// simulates the target hierarchy, "analytical" derives hit rates from a
	// machine-independent reuse-distance signature. Ignored with an inline
	// signature.
	Model string `json:"model,omitempty"`
	// Sampling selects the collection sampling policy ("fixed:400000",
	// "adaptive:0.05,pilot=20000,min=20000,max=400000,cluster=on"; empty =
	// server default). Mutually exclusive with SampleRefs. Ignored with an
	// inline signature.
	Sampling string `json:"sampling,omitempty"`
	// Signature predicts from an already-collected (or extrapolated)
	// signature instead of collecting one.
	Signature *tracex.Signature `json:"signature,omitempty"`
	// Intervals asks for runtime prediction intervals (50%/90%/95%
	// bands). Tri-state: absent defers to the server's -intervals
	// default, true/false override it per request. Intervals require an
	// inline extrapolated signature carrying uncertainty (see
	// /v1/extrapolate with intervals); other predictions return none.
	Intervals *bool `json:"intervals,omitempty"`
}

// Bool returns a pointer to b: a literal for the tri-state request knobs
// (e.g. PredictRequest.Intervals).
func Bool(b bool) *bool { return &b }

// PredictResponse is the body of a successful POST /v1/predict. It has an
// allocation-free AppendJSON encoder because it is the serving hot path.
type PredictResponse struct {
	App            string  `json:"app"`
	Cores          int     `json:"cores"`
	Machine        string  `json:"machine"`
	RuntimeSeconds float64 `json:"runtime_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	MemSeconds     float64 `json:"mem_seconds"`
	FPSeconds      float64 `json:"fp_seconds"`
	// From reports where the signature came from: "inline" when the client
	// supplied it, otherwise the engine cache tier that satisfied the
	// collection ("memory", "disk", "peer", "collected" or "analytical").
	From string `json:"from,omitempty"`
	// Model echoes the cache model that produced the signature's hit rates
	// ("exact" or "analytical"; empty for inline signatures).
	Model string `json:"model,omitempty"`
	// Sampling echoes the normalized sampling policy the collection
	// actually ran with (e.g. "fixed:400000,warm=2000000"; empty for
	// inline signatures).
	Sampling string `json:"sampling,omitempty"`
	// Intervals are the runtime prediction intervals, ascending by level
	// (absent unless the request asked for intervals and the signature
	// carried extrapolation uncertainty).
	Intervals []tracex.Interval `json:"intervals,omitempty"`
}

// PredictionResponse converts a library prediction into its wire form.
// From and Model are left empty for the caller to fill (the server knows
// the provenance; the CLI's inline path does not).
func PredictionResponse(p *tracex.Prediction) *PredictResponse {
	return &PredictResponse{
		App:            p.App,
		Cores:          p.CoreCount,
		Machine:        p.Machine,
		RuntimeSeconds: p.Runtime,
		ComputeSeconds: p.ComputeSeconds,
		CommSeconds:    p.CommSeconds,
		MemSeconds:     p.MemSeconds,
		FPSeconds:      p.FPSeconds,
		Intervals:      p.Intervals,
	}
}

// StudyRequest is the body of POST /v1/study: the full
// collect → extrapolate → predict pipeline in one call.
type StudyRequest struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	// InputCounts are the small core counts to trace (the paper uses
	// three).
	InputCounts []int `json:"input_counts"`
	// TargetCores and TargetCounts name the extrapolation targets; the
	// study evaluates their sorted, deduplicated union.
	TargetCores  int   `json:"target_cores,omitempty"`
	TargetCounts []int `json:"target_counts,omitempty"`
	// SampleRefs tunes collection (0 = server default).
	SampleRefs int `json:"sample_refs,omitempty"`
	// Model selects the cache model for every collection in the study
	// ("exact" default, or "analytical").
	Model string `json:"model,omitempty"`
	// Sampling selects the sampling policy for every collection in the
	// study (empty = server default; mutually exclusive with SampleRefs).
	Sampling string `json:"sampling,omitempty"`
	// ExtendedForms adds the power-law and quadratic forms to the fit.
	ExtendedForms bool `json:"extended_forms,omitempty"`
	// WithTruth additionally collects at each target count and predicts
	// from it (the paper's Table I baseline). Expensive at scale.
	WithTruth bool `json:"with_truth,omitempty"`
	// Intervals runs the extrapolation with posterior model averaging and
	// attaches runtime prediction intervals to each row. Tri-state:
	// absent defers to the server's -intervals default.
	Intervals *bool `json:"intervals,omitempty"`
}

// StudyResponse is the body of a successful POST /v1/study.
type StudyResponse struct {
	App         string            `json:"app"`
	Machine     string            `json:"machine"`
	InputCounts []int             `json:"input_counts"`
	Rows        []tracex.StudyRow `json:"rows"`
}

// ExtrapolateRequest is the body of POST /v1/extrapolate.
type ExtrapolateRequest struct {
	// Signatures are the input signatures (≥ 2, same app and machine,
	// distinct core counts).
	Signatures []*tracex.Signature `json:"signatures"`
	// TargetCores is the count to synthesize a signature for.
	TargetCores int `json:"target_cores"`
	// ExtendedForms adds the power-law and quadratic forms to the fit.
	ExtendedForms bool `json:"extended_forms,omitempty"`
	// Intervals extrapolates with posterior model averaging: the returned
	// signature carries per-element predictive variances ("uncertainty"),
	// which a later /v1/predict with intervals propagates into runtime
	// bands. Tri-state: absent defers to the server's -intervals default.
	Intervals *bool `json:"intervals,omitempty"`
}

// ExtrapolateResponse is the body of a successful POST /v1/extrapolate.
type ExtrapolateResponse struct {
	Signature     *tracex.Signature `json:"signature"`
	Fits          int               `json:"fits"`
	SkippedBlocks []uint64          `json:"skipped_blocks,omitempty"`
}

// SignatureRequest is the body of POST /v1/signatures: collect one
// application signature.
type SignatureRequest struct {
	App        string `json:"app"`
	Cores      int    `json:"cores"`
	Machine    string `json:"machine"`
	SampleRefs int    `json:"sample_refs,omitempty"`
	// Model selects the cache model ("exact" default, or "analytical").
	Model string `json:"model,omitempty"`
	// Sampling selects the sampling policy (empty = server default;
	// mutually exclusive with SampleRefs). A fleet peer delegating a
	// collection forwards its policy here so the owner collects under the
	// same identity.
	Sampling string `json:"sampling,omitempty"`
	// Delegated marks a collection forwarded by a fleet peer to this node
	// because the consistent-hash ring names it the key's owner. The server
	// answers it with a strictly local collection (memory→disk→collect,
	// never the peer tier), which breaks delegation cycles when two nodes
	// briefly disagree about ring membership during a peers reload.
	Delegated bool `json:"delegated,omitempty"`
}

// SignatureResponse is the body of a successful POST /v1/signatures.
type SignatureResponse struct {
	Ranks        int               `json:"ranks"`
	Blocks       int               `json:"blocks"`
	DominantRank int               `json:"dominant_rank"`
	Signature    *tracex.Signature `json:"signature"`
}

// StoredSignatureResponse is the body of a successful
// GET /v1/signatures/{key}.
type StoredSignatureResponse struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	Cores   int    `json:"cores"`
	// Hash is the object's hex SHA-256 content hash.
	Hash string `json:"hash"`
	// Bytes and Unix carry the manifest entry's metadata when the object
	// is still referenced (zero for an unreferenced hash fetch).
	Bytes     int64             `json:"bytes,omitempty"`
	Unix      int64             `json:"unix,omitempty"`
	Signature *tracex.Signature `json:"signature"`
}

// StorePutResponse is the body of a successful PUT /v1/signatures/{key}.
type StorePutResponse struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	Cores   int    `json:"cores"`
	Hash    string `json:"hash"`
	Bytes   int64  `json:"bytes"`
}

// FleetStatusResponse is the body of GET /v1/fleet/status on a daemon
// running with a peer fleet: the consistent-hash ring membership, this
// node's share of the key space, per-peer health and warm-start
// replication progress.
type FleetStatusResponse struct {
	// Self is this node's advertised base URL (its ring identity).
	Self string `json:"self"`
	// Mode is the shard mode: "fetch" (non-owners delegate collection to
	// the owner and fetch the result) or "redirect" (signature GETs for
	// remote keys answer 307 to the owner).
	Mode string `json:"mode"`
	// OwnedShare estimates the fraction of the key space this node owns
	// under the current ring (1/len(peers) when balanced).
	OwnedShare float64 `json:"owned_share"`
	// Peers lists every ring member, self included, with health detail.
	Peers []FleetPeerStatus `json:"peers"`
	// Replication reports the startup warm-start pull.
	Replication FleetReplication `json:"replication"`
}

// FleetPeerStatus is one ring member's health as seen from this node.
type FleetPeerStatus struct {
	// URL is the peer's base URL (its ring identity).
	URL string `json:"url"`
	// Self marks this node's own entry (health fields are zero: a node
	// does not dial itself).
	Self bool `json:"self,omitempty"`
	// Healthy is false while the peer is in probation: consecutive
	// failures tripped the breaker and fetches are skipped until the
	// capped, jittered backoff expires.
	Healthy bool `json:"healthy"`
	// ErrorRate is the EWMA of fetch failures in [0, 1] (0 before any
	// fetch).
	ErrorRate float64 `json:"error_rate"`
	// Fetches, Hits and Errors count this node's requests to the peer.
	Fetches uint64 `json:"fetches"`
	Hits    uint64 `json:"hits"`
	Errors  uint64 `json:"errors"`
	// Probations counts how many times the peer entered probation.
	Probations uint64 `json:"probations"`
}

// FleetReplication is the warm-start replication progress of
// FleetStatusResponse.
type FleetReplication struct {
	// Done flips true when the startup pull has visited every peer.
	Done bool `json:"done"`
	// Pulled counts signatures copied into the local store; Errors counts
	// failed pulls (the replicator continues past them).
	Pulled uint64 `json:"pulled"`
	Errors uint64 `json:"errors"`
}

// FleetSyncRequest is the body of POST /v1/fleet/sync: the triple keys
// ("app@cores@machine") the requester already stores.
type FleetSyncRequest struct {
	Have []string `json:"have,omitempty"`
}

// FleetSyncEntry is one store manifest entry the responder holds and the
// requester does not.
type FleetSyncEntry struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	Cores   int    `json:"cores"`
	// Hash is the object's hex SHA-256 content hash; Bytes its encoded
	// size.
	Hash  string `json:"hash"`
	Bytes int64  `json:"bytes"`
}

// FleetSyncResponse is the body of a successful POST /v1/fleet/sync.
type FleetSyncResponse struct {
	Entries []FleetSyncEntry `json:"entries"`
}

// AppsResponse is the body of GET /v1/apps.
type AppsResponse struct {
	Apps []string `json:"apps"`
}

// MachinesResponse is the body of GET /v1/machines.
type MachinesResponse struct {
	Machines []string `json:"machines"`
}

// HealthResponse is the body of GET /healthz and GET /readyz ("ok",
// "ready" or "draining").
type HealthResponse struct {
	Status string `json:"status"`
}

// ErrorBody is the JSON rendering of every failed request. Codes are
// stable API: clients branch on Code, not Message.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries one error's machine-readable classification and
// human-readable context.
type ErrorDetail struct {
	// Code is the stable, snake_case error class (the server's classify
	// mapping; see tracex/client for the sentinel each code resolves to).
	Code string `json:"code"`
	// Message is the underlying error text.
	Message string `json:"message"`
	// Status mirrors the HTTP status code for clients that only see the
	// body.
	Status int `json:"status"`
	// RetryAfterSeconds accompanies 429 responses (it mirrors the
	// Retry-After header). The value is jittered per response so a burst of
	// rejected clients does not retry in lockstep.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// DecodeStrict decodes one JSON value from r, rejecting unknown fields.
// It is the canonical request decoder: the server and the load harness both
// use it, so a body the harness generates is exactly a body the server
// accepts.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
