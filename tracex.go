// Package tracex is a reproduction of "Inferring Large-scale Computation
// Behavior via Trace Extrapolation" (Carrington, Laurenzano, Tiwari —
// IPDPS Workshops 2013): a library for characterizing an MPI application's
// large-scale computation behaviour from traces collected at a series of
// smaller core counts.
//
// The package is a facade over the full pipeline:
//
//	machine config ──MultiMAPS──▶ machine profile (bandwidth surface)
//	proxy app @ P ──instrumentation + cache sim──▶ application signature
//	signatures @ P1..P3 ──canonical-form fits──▶ signature @ Ptarget
//	signature × profile ──PSiNS convolution + replay──▶ predicted runtime
//	proxy app @ Ptarget ──detailed execution simulation──▶ measured runtime
//
// The heavy lifting lives in the internal packages (stats, cache, memsim,
// machine, multimaps, trace, mpi, psins, synthapp, pebil, extrap, cluster);
// this package wires them together and re-exports the data types a caller
// needs via type aliases.
//
// The pipeline is orchestrated by Engine, which memoizes machine profiles
// and application signatures, deduplicates concurrent identical work, and
// fans batch requests out across a bounded worker pool. The package-level
// functions below are convenience wrappers over a process-wide default
// Engine with context.Background(); callers that need cancellation,
// bounded parallelism or cache control should construct their own Engine.
package tracex

import (
	"context"

	"tracex/internal/cache"
	"tracex/internal/cluster"
	"tracex/internal/extrap"
	"tracex/internal/machine"
	"tracex/internal/mpi"
	"tracex/internal/pebil"
	"tracex/internal/psins"
	"tracex/internal/stats"
	"tracex/internal/synthapp"
	"tracex/internal/trace"
	"tracex/internal/uncert"
)

// Re-exported data types. Aliases keep the public API nameable by external
// importers while the implementations live in internal packages.
type (
	// Signature is an application signature: trace files from the MPI
	// ranks of one run against one target machine.
	Signature = trace.Signature
	// Trace is the summary trace file of one MPI task.
	Trace = trace.Trace
	// Block is one basic block's entry in a trace file.
	Block = trace.Block
	// FeatureVector holds the per-block features the methodology models.
	FeatureVector = trace.FeatureVector
	// MachineConfig describes a target system's hardware.
	MachineConfig = machine.Config
	// CacheLevel configures one level of a machine's cache hierarchy
	// (MachineConfig.Caches). Exported so geometry sweeps can construct
	// candidate hierarchies directly.
	CacheLevel = cache.LevelConfig
	// Profile is a machine profile (MultiMAPS surface plus rates).
	Profile = machine.Profile
	// App is a synthetic proxy application.
	App = synthapp.App
	// ExtrapResult is the product of a trace extrapolation.
	ExtrapResult = extrap.Result
	// ElementError compares an extrapolated element with ground truth.
	ElementError = extrap.ElementError
	// ExtrapOptions tunes the extrapolation.
	ExtrapOptions = extrap.Options
	// CollectOptions tunes signature collection. It aliases
	// pebil.CollectorConfig: Sampling/SharedHierarchy/Model (and the
	// deprecated SampleRefs/MaxWarmRefs ints) shape the result,
	// Workers/BatchSize only schedule it.
	CollectOptions = pebil.CollectorConfig
	// SamplingPolicy is the typed reference-budget policy on
	// CollectOptions.Sampling: a fixed per-block budget or adaptive
	// stratified sampling with per-block error bounds (see FixedSampling,
	// AdaptiveSampling, ParseSamplingPolicy).
	SamplingPolicy = pebil.SamplingPolicy
	// SamplingMode tags a SamplingPolicy as fixed or adaptive.
	SamplingMode = pebil.SamplingMode
	// CacheModel selects how per-block hit rates are produced during
	// collection: ModelExact simulates the target hierarchy, ModelAnalytical
	// derives the rates from a reuse-distance signature.
	CacheModel = pebil.CacheModel
	// ReuseSignature is a machine-independent application profile: per-block
	// reuse-distance histograms the analytical cache model converts into hit
	// rates for any geometry.
	ReuseSignature = trace.ReuseSignature
	// ReuseHistogram is one block's LRU stack-distance histogram.
	ReuseHistogram = trace.ReuseHistogram
	// Form is a canonical scaling-function family.
	Form = stats.Form
)

// Cache-model names for CollectOptions.Model and WithCacheModel.
const (
	// ModelExact simulates every reference against the target hierarchy —
	// the fidelity oracle. The zero CacheModel means ModelExact.
	ModelExact = pebil.ModelExact
	// ModelAnalytical records one geometry-free reuse-distance signature
	// and converts it into per-level hit rates for any geometry
	// analytically.
	ModelAnalytical = pebil.ModelAnalytical
	// SamplingModeFixed selects the fixed per-block budget (the paper's
	// original collection discipline).
	SamplingModeFixed = pebil.SamplingModeFixed
	// SamplingModeAdaptive selects adaptive stratified sampling with
	// per-block error bounds and cluster representatives.
	SamplingModeAdaptive = pebil.SamplingModeAdaptive
)

// FixedSampling returns a fixed sampling policy with the given per-block
// sample length and warm-up cap (≤ 0 selects the defaults).
func FixedSampling(sampleRefs, maxWarmRefs int) SamplingPolicy {
	return pebil.FixedSampling(sampleRefs, maxWarmRefs)
}

// AdaptiveSampling returns an adaptive sampling policy targeting the given
// per-block relative standard error (≤ 0 selects the default 0.05), with
// block clustering enabled.
func AdaptiveSampling(targetRelErr float64) SamplingPolicy {
	return pebil.AdaptiveSampling(targetRelErr)
}

// ParseSamplingPolicy parses the -sampling flag / "sampling" wire syntax,
// e.g. "fixed:400000" or "adaptive:0.05,pilot=20000,cluster=on".
func ParseSamplingPolicy(s string) (SamplingPolicy, error) {
	return pebil.ParseSamplingPolicy(s)
}

// Sentinel errors for the failure modes callers branch on. Every error
// returned from the pipeline that stems from one of these conditions wraps
// the corresponding sentinel, so errors.Is works across all entry points
// (free functions, Engine methods, and the CLIs).
var (
	// ErrMachineMismatch reports signatures and profiles (or mixed input
	// signatures) that describe different machines or applications.
	ErrMachineMismatch = trace.ErrMachineMismatch
	// ErrNoTraces reports a signature with no trace files.
	ErrNoTraces = trace.ErrNoTraces
	// ErrRankOutOfRange reports a rank selection outside [0, cores).
	ErrRankOutOfRange = trace.ErrRankOutOfRange
	// ErrEmptyWorkload reports an application whose workload generates no
	// basic blocks at the requested core count.
	ErrEmptyWorkload = pebil.ErrEmptyWorkload
	// ErrModelUnsupported reports a collection or derivation the analytical
	// cache model cannot serve faithfully (shared hierarchies, hardware
	// prefetchers, mismatched line sizes); retry with ModelExact.
	ErrModelUnsupported = cache.ErrModelUnsupported
)

// CanonicalForms returns the paper's four canonical forms (constant,
// linear, logarithmic, exponential) in selection tie-break order.
func CanonicalForms() []Form { return stats.CanonicalForms() }

// ExtendedForms returns the canonical forms plus the future-work extensions
// (power law and quadratic).
func ExtendedForms() []Form { return stats.ExtendedForms() }

// LoadApp returns a proxy application by name ("specfem3d", "uh3d",
// "cgsolve", "stencil3d", "stencil3dweak").
func LoadApp(name string) (*App, error) { return synthapp.ByName(name) }

// Apps lists the available proxy applications.
func Apps() []string { return synthapp.Names() }

// LoadMachine returns a predefined machine configuration by name (see
// Machines for the list); appending "+pf" to any name selects its
// hardware-prefetcher variant.
func LoadMachine(name string) (MachineConfig, error) { return machine.ByName(name) }

// Machines lists the predefined machine configurations.
func Machines() []string { return machine.Names() }

// BuildProfile runs the MultiMAPS benchmark against the machine's simulated
// memory system and returns its machine profile. The result is memoized by
// the default Engine and must be treated as read-only.
func BuildProfile(cfg MachineConfig) (*Profile, error) {
	return DefaultEngine().Profile(context.Background(), cfg)
}

// CollectSignature traces the application at the given core count against
// the target machine's cache structure, producing the application signature
// (one trace per load class by default; the paper's tracing step). The
// result is memoized by the default Engine and must be treated as
// read-only.
func CollectSignature(app *App, cores int, target MachineConfig, opt CollectOptions) (*Signature, error) {
	return DefaultEngine().CollectSignature(context.Background(), app, cores, target, opt)
}

// CollectReuse records the application's machine-independent reuse-distance
// signature at the given core count (memoized by the default Engine). Derive
// per-geometry application signatures from it with DeriveSignature.
func CollectReuse(app *App, cores int, opt CollectOptions) (*ReuseSignature, error) {
	rs, _, err := DefaultEngine().CollectReuse(context.Background(), app, cores, opt)
	return rs, err
}

// CollectInputs traces the application at each of the given core counts —
// the "series of smaller core counts" the extrapolation consumes. The
// collections run concurrently on the default Engine's worker pool.
func CollectInputs(app *App, counts []int, target MachineConfig, opt CollectOptions) ([]*Signature, error) {
	return DefaultEngine().CollectInputs(context.Background(), app, counts, target, opt)
}

// Extrapolate fits canonical scaling forms to every feature-vector element
// of the dominant task across the input signatures and synthesizes the
// signature at targetCores.
func Extrapolate(inputs []*Signature, targetCores int, opt ExtrapOptions) (*ExtrapResult, error) {
	return DefaultEngine().Extrapolate(context.Background(), inputs, targetCores, opt)
}

// DeriveSignature converts a reuse-distance signature into the application
// signature for one target geometry using the analytical cache model — no
// simulation runs, so sweeping many geometries over one collected profile
// costs microseconds per geometry. Targets the model cannot serve (hardware
// prefetchers, line-size mismatches) fail with ErrModelUnsupported.
func DeriveSignature(rs *ReuseSignature, app *App, target MachineConfig) (*Signature, error) {
	return pebil.SignatureFromReuse(rs, app, target, nil, cache.Analytical{})
}

// CompareTraces evaluates an extrapolated trace element-by-element against
// a collected one, reporting absolute relative errors and block influence.
func CompareTraces(extrapolated, collected *Trace) ([]ElementError, error) {
	return extrap.Compare(extrapolated, collected)
}

// Prediction is a runtime estimate for an application run on a target
// machine, with its decomposition.
type Prediction struct {
	// App, CoreCount and Machine identify the run.
	App       string
	CoreCount int
	Machine   string
	// Runtime is the wall-clock estimate in seconds.
	Runtime float64
	// ComputeSeconds is the dominant rank's computation time.
	ComputeSeconds float64
	// CommSeconds is the dominant rank's communication time (overheads
	// plus waits).
	CommSeconds float64
	// MemSeconds and FPSeconds decompose the dominant rank's computation.
	MemSeconds, FPSeconds float64
	// Replay is the full per-rank replay result; populated only when the
	// prediction was requested with PredictRequest.WithReplay.
	Replay *ReplayResult
	// Timeline is the per-rank segment record; populated only when the
	// prediction was requested with PredictRequest.WithTimeline.
	Timeline *Timeline
	// Intervals are the runtime prediction intervals, ascending by level;
	// populated only when the prediction was requested with
	// PredictRequest.Intervals from a signature carrying extrapolation
	// uncertainty.
	Intervals []Interval
}

// Interval is one central prediction interval on a predicted runtime (or
// any other posterior quantity): the value lies in [Lo, Hi] with
// probability Level.
type Interval = uncert.Interval

// DefaultIntervalLevels are the interval levels reported when a request
// does not choose its own: the 50%, 90% and 95% bands.
func DefaultIntervalLevels() []float64 {
	return append([]float64(nil), uncert.DefaultLevels...)
}

// ReplayResult is the discrete-event replay outcome with per-rank detail.
type ReplayResult = psins.Result

// Program builds the application's replayable MPI event trace (exposed for
// tools and experiments that drive the replay engine directly).
func Program(app *App, cores int) (*mpi.Program, error) { return app.Program(cores) }

// RankClusters groups an application signature's MPI tasks by feature
// similarity (the paper's Future Work §VI clustering extension).
type RankClusters = cluster.RankClusters

// ClusterRanks k-means-clusters the signature's traces into groups of
// similar tasks and selects a representative ("centroid") rank for each.
func ClusterRanks(sig *Signature, k int, seed int64) (*RankClusters, error) {
	return cluster.ClusterRanks(sig, k, seed)
}

// Timeline is a replay's per-rank segment record (for visualization).
type Timeline = psins.Timeline
