package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"tracex"
	"tracex/internal/server"
	"tracex/wire"
)

var bg = context.Background()

// errorServer answers every request with one structured wire error.
func errorServer(status int, code, msg string, retryAfter int) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(&wire.ErrorBody{Error: wire.ErrorDetail{
			Code: code, Message: msg, Status: status, RetryAfterSeconds: retryAfter,
		}})
	}))
}

func TestErrorMapping(t *testing.T) {
	cases := []struct {
		status   int
		code     string
		sentinel error
	}{
		{http.StatusTooManyRequests, "overloaded", ErrOverloaded},
		{http.StatusNotFound, "not_found", ErrNotFound},
		{http.StatusBadRequest, "bad_request", ErrBadRequest},
		{http.StatusNotImplemented, "no_store", ErrNoStore},
	}
	for _, c := range cases {
		ts := errorServer(c.status, c.code, "synthetic", 0)
		_, err := New(ts.URL).Apps(bg)
		ts.Close()
		if !errors.Is(err, c.sentinel) {
			t.Errorf("status %d: errors.Is(%v, %v) = false", c.status, err, c.sentinel)
		}
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("status %d: %T is not an *APIError", c.status, err)
		}
		if apiErr.Status != c.status || apiErr.Code != c.code || apiErr.Message != "synthetic" {
			t.Errorf("status %d: decoded %+v", c.status, apiErr)
		}
	}
}

// TestErrorFallback covers a non-wire error body (a proxy answered): the
// status still maps to the sentinel and the raw text is preserved.
func TestErrorFallback(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text 404", http.StatusNotFound)
	}))
	defer ts.Close()
	_, err := New(ts.URL).Apps(bg)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("plain-text 404 did not map to ErrNotFound: %v", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "" || apiErr.Message != "plain text 404" {
		t.Errorf("fallback decode: %+v", apiErr)
	}
}

// TestRetryAfterHeaderOnly covers a 429 carrying only the header (no JSON
// body): RetryAfter still populates.
func TestRetryAfterHeaderOnly(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	_, err := New(ts.URL).Apps(bg)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter from header = %v, want 7s (err %v)", apiErr, err)
	}
}

// TestNoRetryByDefault pins that a default client surfaces the first 429
// without sleeping: load generators must observe every rejection.
func TestNoRetryByDefault(t *testing.T) {
	var hits atomic.Int64
	ts := errorServerCounting(&hits, 1<<30, 2)
	defer ts.Close()
	c := New(ts.URL)
	c.sleep = func(context.Context, time.Duration) error {
		t.Error("default client slept for a retry")
		return nil
	}
	if _, err := c.Apps(bg); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if hits.Load() != 1 {
		t.Errorf("server saw %d requests, want 1", hits.Load())
	}
}

// errorServerCounting 429s the first reject requests (with the given
// Retry-After) and then serves an empty AppsResponse.
func errorServerCounting(hits *atomic.Int64, reject int64, retryAfter int) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= reject {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(&wire.ErrorBody{Error: wire.ErrorDetail{
				Code: "overloaded", Message: "synthetic", Status: 429, RetryAfterSeconds: retryAfter,
			}})
			return
		}
		_ = json.NewEncoder(w).Encode(&wire.AppsResponse{Apps: []string{"stencil3d"}})
	}))
}

// TestRetryHonorsRetryAfter drives two 429s then success, with the sleep
// recorded: each wait is raised to the server's Retry-After.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	ts := errorServerCounting(&hits, 2, 2)
	defer ts.Close()
	c := New(ts.URL, WithRetries(3))
	var slept []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	apps, err := c.Apps(bg)
	if err != nil {
		t.Fatalf("Apps after retries: %v", err)
	}
	if len(apps) != 1 || hits.Load() != 3 {
		t.Errorf("apps %v after %d requests, want 1 app after 3", apps, hits.Load())
	}
	want := []time.Duration{2 * time.Second, 2 * time.Second}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleep schedule %v, want %v (Retry-After dominates the 100ms base)", slept, want)
	}
}

// TestRetryUnavailable drives two 503s then success: WithRetries honors
// 503 + Retry-After with the same capped backoff as 429.
func TestRetryUnavailable(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(&wire.ErrorBody{Error: wire.ErrorDetail{
				Code: "unavailable", Message: "synthetic", Status: 503, RetryAfterSeconds: 2,
			}})
			return
		}
		_ = json.NewEncoder(w).Encode(&wire.AppsResponse{Apps: []string{"stencil3d"}})
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetries(3))
	var slept []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	apps, err := c.Apps(bg)
	if err != nil {
		t.Fatalf("Apps after 503 retries: %v", err)
	}
	if len(apps) != 1 || hits.Load() != 3 {
		t.Errorf("apps %v after %d requests, want 1 app after 3", apps, hits.Load())
	}
	want := []time.Duration{2 * time.Second, 2 * time.Second}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("sleep schedule %v, want %v", slept, want)
	}
}

// TestUnavailableSentinel pins the 503 → ErrUnavailable mapping.
func TestUnavailableSentinel(t *testing.T) {
	ts := errorServer(http.StatusServiceUnavailable, "unavailable", "synthetic", 1)
	defer ts.Close()
	_, err := New(ts.URL).Apps(bg)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("503: errors.Is(%v, ErrUnavailable) = false", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Errorf("503 must not map to ErrOverloaded: %v", err)
	}
}

// TestRetrySkipsDeterministicErrors pins that only 429 retries: a 400 with
// retries enabled fails immediately.
func TestRetrySkipsDeterministicErrors(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(&wire.ErrorBody{Error: wire.ErrorDetail{Code: "bad_request", Status: 400}})
	}))
	defer ts.Close()
	if _, err := New(ts.URL, WithRetries(5)).Apps(bg); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
	if hits.Load() != 1 {
		t.Errorf("400 was retried: %d requests", hits.Load())
	}
}

// TestBackoffSchedule pins the pure backoff computation: exponential
// doubling from the base, raised by Retry-After, capped at the max.
func TestBackoffSchedule(t *testing.T) {
	c := New("http://x", WithBackoff(100*time.Millisecond, 1*time.Second))
	cases := []struct {
		attempt    int
		retryAfter time.Duration
		want       time.Duration
	}{
		{0, 0, 100 * time.Millisecond},
		{1, 0, 200 * time.Millisecond},
		{2, 0, 400 * time.Millisecond},
		{4, 0, 1 * time.Second},                             // capped
		{70, 0, 1 * time.Second},                            // shift overflow guard
		{0, 500 * time.Millisecond, 500 * time.Millisecond}, // Retry-After raises
		{3, 500 * time.Millisecond, 800 * time.Millisecond}, // ...but never lowers
		{0, 30 * time.Second, 1 * time.Second},              // cap beats Retry-After
	}
	for _, tc := range cases {
		if got := c.backoff(tc.attempt, tc.retryAfter); got != tc.want {
			t.Errorf("backoff(%d, %v) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
		}
	}
}

// TestContextBoundsRetries pins that the context deadline covers backoff
// sleeps: a hopeless retry loop exits with the context's error.
func TestContextBoundsRetries(t *testing.T) {
	var hits atomic.Int64
	ts := errorServerCounting(&hits, 1<<30, 10)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := New(ts.URL, WithRetries(100)).Apps(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("retry loop ignored the context for %v", elapsed)
	}
}

// TestAgainstServer exercises the client end-to-end against a real tracexd
// server: catalog routes, collect, store round-trip and predict all speak
// the shared wire types.
func TestAgainstServer(t *testing.T) {
	if testing.Short() {
		t.Skip("real collection in -short mode")
	}
	eng := tracex.NewEngine(tracex.WithStore(t.TempDir()))
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(bg, 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	c := New("http://" + addr.String())

	apps, err := c.Apps(bg)
	if err != nil {
		t.Fatal(err)
	}
	machines, err := c.Machines(bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) == 0 || len(machines) == 0 {
		t.Fatalf("empty catalog: apps %v machines %v", apps, machines)
	}
	if status, err := c.Ready(bg); err != nil || status != "ready" {
		t.Fatalf("Ready = %q, %v", status, err)
	}

	// Collect a real signature through the API, then round-trip it through
	// the store.
	coll, err := c.Collect(bg, &wire.SignatureRequest{
		App: "stencil3d", Cores: 64, Machine: "bluewaters", SampleRefs: 20000,
	})
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	if coll.Signature == nil || coll.Blocks == 0 {
		t.Fatalf("Collect returned %+v", coll)
	}
	key := Key("stencil3d", 64, "bluewaters")
	put, err := c.PutSignature(bg, key, coll.Signature)
	if err != nil {
		t.Fatalf("PutSignature: %v", err)
	}
	got, err := c.GetSignature(bg, key)
	if err != nil {
		t.Fatalf("GetSignature(%s): %v", key, err)
	}
	if got.Hash != put.Hash || got.App != "stencil3d" || got.Cores != 64 {
		t.Errorf("store round-trip: put %+v, got %+v", put, got)
	}
	byHash, err := c.GetSignature(bg, put.Hash)
	if err != nil {
		t.Fatalf("GetSignature(%s): %v", put.Hash, err)
	}
	if byHash.Signature == nil || byHash.Signature.CoreCount != 64 {
		t.Errorf("hash fetch: %+v", byHash)
	}
	if _, err := c.GetSignature(bg, Key("nope", 64, "bluewaters")); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key: %v, want ErrNotFound", err)
	}
	if ok, err := c.SignatureExists(bg, key); err != nil || !ok {
		t.Errorf("SignatureExists(%s) = %v, %v, want true", key, ok, err)
	}
	if ok, err := c.SignatureExists(bg, Key("nope", 64, "bluewaters")); err != nil || ok {
		t.Errorf("SignatureExists(missing) = %v, %v, want false, nil", ok, err)
	}

	// Predict from the collected signature.
	pred, err := c.Predict(bg, &wire.PredictRequest{Signature: coll.Signature})
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if pred.RuntimeSeconds <= 0 || pred.From != "inline" {
		t.Errorf("Predict = %+v", pred)
	}

	// Interval round-trip: extrapolate with the tri-state knob on, then
	// predict from the uncertainty-carrying signature. The knob and the
	// interval fields cross the wire through the typed client structs.
	sigs := []*tracex.Signature{coll.Signature}
	for _, cores := range []int{16, 32} {
		r, err := c.Collect(bg, &wire.SignatureRequest{
			App: "stencil3d", Cores: cores, Machine: "bluewaters", SampleRefs: 20000,
		})
		if err != nil {
			t.Fatalf("Collect(%d): %v", cores, err)
		}
		sigs = append(sigs, r.Signature)
	}
	ex, err := c.Extrapolate(bg, &wire.ExtrapolateRequest{
		Signatures: sigs, TargetCores: 128, Intervals: wire.Bool(true),
	})
	if err != nil {
		t.Fatalf("Extrapolate: %v", err)
	}
	if ex.Signature == nil || ex.Signature.Uncertainty == nil {
		t.Fatalf("extrapolated signature carries no uncertainty: %+v", ex)
	}
	ip, err := c.Predict(bg, &wire.PredictRequest{Signature: ex.Signature, Intervals: wire.Bool(true)})
	if err != nil {
		t.Fatalf("Predict(intervals): %v", err)
	}
	if len(ip.Intervals) == 0 {
		t.Fatal("Predict with intervals=true returned no intervals")
	}
	for _, iv := range ip.Intervals {
		if !(iv.Lo <= ip.RuntimeSeconds && ip.RuntimeSeconds <= iv.Hi) {
			t.Errorf("interval %+v does not bracket runtime %.3f", iv, ip.RuntimeSeconds)
		}
	}
	// Absent knob defers to the server default (off here): no intervals.
	np, err := c.Predict(bg, &wire.PredictRequest{Signature: ex.Signature})
	if err != nil {
		t.Fatalf("Predict(default): %v", err)
	}
	if len(np.Intervals) != 0 {
		t.Errorf("default predict carried intervals: %+v", np.Intervals)
	}

	// Sampling policy round-trip: an adaptive collection succeeds, its
	// signature carries per-element measurement uncertainty, and a predict
	// under the same policy echoes the normalized policy string — the
	// response must report what the collection actually ran with, not what
	// the request literally said.
	const adaptivePolicy = "adaptive:0.1,pilot=5000,min=5000,max=50000"
	asr, err := c.Collect(bg, &wire.SignatureRequest{
		App: "stencil3d", Cores: 64, Machine: "bluewaters", Sampling: adaptivePolicy,
	})
	if err != nil {
		t.Fatalf("Collect(adaptive): %v", err)
	}
	if asr.Signature == nil || asr.Signature.Uncertainty == nil {
		t.Fatalf("adaptive collection carries no uncertainty: %+v", asr)
	}
	ap, err := c.Predict(bg, &wire.PredictRequest{
		App: "stencil3d", Cores: 64, Machine: "bluewaters", Sampling: adaptivePolicy,
	})
	if err != nil {
		t.Fatalf("Predict(adaptive): %v", err)
	}
	if want := adaptivePolicy + ",cluster=on"; ap.Sampling != want {
		t.Errorf("Predict echoed sampling %q, want %q", ap.Sampling, want)
	}
	// A malformed policy maps to the 400 sentinel, and combining the
	// policy with the legacy knob is rejected rather than silently picked.
	if _, err := c.Collect(bg, &wire.SignatureRequest{
		App: "stencil3d", Cores: 64, Machine: "bluewaters", Sampling: "adaptive:nope",
	}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("malformed sampling: %v, want ErrBadRequest", err)
	}
	if _, err := c.Collect(bg, &wire.SignatureRequest{
		App: "stencil3d", Cores: 64, Machine: "bluewaters",
		Sampling: "fixed:20000", SampleRefs: 20000,
	}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("sampling+sample_refs conflict: %v, want ErrBadRequest", err)
	}
}

// TestNoStoreSentinel checks the 501 mapping against a storeless daemon.
func TestNoStoreSentinel(t *testing.T) {
	s, err := server.New(server.Config{Engine: tracex.NewEngine()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(bg, 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	c := New("http://" + addr.String())
	if _, err := c.GetSignature(bg, Key("stencil3d", 64, "bluewaters")); !errors.Is(err, ErrNoStore) {
		t.Fatalf("storeless GET: %v, want ErrNoStore", err)
	}
	// SignatureExists propagates non-404 errors instead of reporting "absent".
	if _, err := c.SignatureExists(bg, Key("stencil3d", 64, "bluewaters")); !errors.Is(err, ErrNoStore) {
		t.Fatalf("storeless HEAD: %v, want ErrNoStore", err)
	}
}
