// Package client is the typed Go client for tracexd's versioned HTTP API.
// It speaks the tracex/wire contract: requests and responses are the wire
// package's types, failures surface as *APIError values decoded from the
// server's structured error bodies, and the stable error classes map onto
// exported sentinels so callers branch with errors.Is rather than string
// matching.
//
// Every call takes a context; deadlines and cancellation propagate into the
// HTTP request, so a context deadline bounds the whole exchange including
// any retries. Retries are off by default (a load generator wants to see
// every 429); WithRetries enables capped exponential backoff on 429
// responses that honors the server's jittered Retry-After.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"tracex"
	"tracex/wire"
)

// Sentinel errors for the stable error classes of the v1 API. An *APIError
// matches the sentinel for its HTTP status, so errors.Is(err, ErrOverloaded)
// is the idiomatic backpressure check.
var (
	// ErrOverloaded reports admission-control rejection (HTTP 429). The
	// APIError carries the server's suggested RetryAfter.
	ErrOverloaded = errors.New("tracexd: overloaded")
	// ErrNotFound reports an unknown application, machine, route or store
	// key (HTTP 404).
	ErrNotFound = errors.New("tracexd: not found")
	// ErrBadRequest reports a malformed or semantically invalid body
	// (HTTP 400).
	ErrBadRequest = errors.New("tracexd: bad request")
	// ErrNoStore reports a store route on a daemon running without a
	// persistent store (HTTP 501).
	ErrNoStore = errors.New("tracexd: no signature store configured")
	// ErrUnavailable reports a temporarily unavailable server (HTTP 503,
	// e.g. a draining or restarting peer). Like ErrOverloaded it is
	// transient: WithRetries retries it, honoring any Retry-After.
	ErrUnavailable = errors.New("tracexd: unavailable")
)

// APIError is a non-2xx response decoded from the server's wire.ErrorBody.
// Status and Code are stable API; Message is human-readable context.
type APIError struct {
	// Status is the HTTP status code of the response.
	Status int
	// Code is the server's stable snake_case error class ("overloaded",
	// "not_found", ...). Empty when the body was not a wire.ErrorBody
	// (e.g. a proxy in the path answered).
	Code string
	// Message is the underlying error text.
	Message string
	// RetryAfter is the server's backoff hint on 429 responses (zero
	// otherwise).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Code == "" {
		return fmt.Sprintf("tracexd: status %d: %s", e.Status, e.Message)
	}
	return fmt.Sprintf("tracexd: %s (HTTP %d): %s", e.Code, e.Status, e.Message)
}

// Is maps the error onto the package sentinels by HTTP status, so wrapped
// APIErrors keep working with errors.Is.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrOverloaded:
		return e.Status == http.StatusTooManyRequests
	case ErrNotFound:
		return e.Status == http.StatusNotFound
	case ErrBadRequest:
		return e.Status == http.StatusBadRequest
	case ErrNoStore:
		return e.Status == http.StatusNotImplemented
	case ErrUnavailable:
		return e.Status == http.StatusServiceUnavailable
	}
	return false
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (connection pool,
// TLS, proxies). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRetries enables up to n retries of transient rejections: 429
// (admission-control overload) and 503 (temporarily unavailable, e.g. a
// draining peer), both honoring the server's Retry-After under the capped
// backoff schedule. Every other failure class is deterministic and
// retrying it would just repeat the error.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the exponential backoff schedule used between 429
// retries: base doubles per attempt, capped at max. The server's
// Retry-After raises (never lowers) an attempt's wait, and the cap always
// wins. Defaults are 100ms base, 5s cap.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoffBase, c.backoffMax = base, max }
}

// Client is a tracexd API client. It is safe for concurrent use.
type Client struct {
	base        string
	hc          *http.Client
	retries     int
	backoffBase time.Duration
	backoffMax  time.Duration
	// sleep waits between retries; injectable so tests observe the
	// schedule without waiting it out.
	sleep func(context.Context, time.Duration) error
}

// New returns a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          http.DefaultClient,
		backoffBase: 100 * time.Millisecond,
		backoffMax:  5 * time.Second,
		sleep:       sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Key builds the human-readable store key "app@cores@machine" accepted by
// the signature GET and PUT routes.
func Key(app string, cores int, machine string) string {
	return app + "@" + strconv.Itoa(cores) + "@" + machine
}

// Predict calls POST /v1/predict.
func (c *Client) Predict(ctx context.Context, req *wire.PredictRequest) (*wire.PredictResponse, error) {
	var resp wire.PredictResponse
	if err := c.do(ctx, http.MethodPost, wire.PathPredict, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Study calls POST /v1/study.
func (c *Client) Study(ctx context.Context, req *wire.StudyRequest) (*wire.StudyResponse, error) {
	var resp wire.StudyResponse
	if err := c.do(ctx, http.MethodPost, wire.PathStudy, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Extrapolate calls POST /v1/extrapolate.
func (c *Client) Extrapolate(ctx context.Context, req *wire.ExtrapolateRequest) (*wire.ExtrapolateResponse, error) {
	var resp wire.ExtrapolateResponse
	if err := c.do(ctx, http.MethodPost, wire.PathExtrapolate, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Collect calls POST /v1/signatures.
func (c *Client) Collect(ctx context.Context, req *wire.SignatureRequest) (*wire.SignatureResponse, error) {
	var resp wire.SignatureResponse
	if err := c.do(ctx, http.MethodPost, wire.PathSignatures, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// GetSignature calls GET /v1/signatures/{key}. The key is either a 64-hex
// content hash or a triple built with Key.
func (c *Client) GetSignature(ctx context.Context, key string) (*wire.StoredSignatureResponse, error) {
	var resp wire.StoredSignatureResponse
	if err := c.do(ctx, http.MethodGet, wire.PathSignaturePrefix+key, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SignatureExists calls HEAD /v1/signatures/{key}: a body-free existence
// probe on the store-read fast path. It reports (true, nil) when the key
// resolves, (false, nil) when the daemon answers 404, and the error for
// every other failure (no store configured, transport trouble, ...).
func (c *Client) SignatureExists(ctx context.Context, key string) (bool, error) {
	err := c.do(ctx, http.MethodHead, wire.PathSignaturePrefix+key, nil, nil)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	return false, err
}

// FleetStatus calls GET /v1/fleet/status.
func (c *Client) FleetStatus(ctx context.Context) (*wire.FleetStatusResponse, error) {
	var resp wire.FleetStatusResponse
	if err := c.do(ctx, http.MethodGet, wire.PathFleetStatus, nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// FleetSync calls POST /v1/fleet/sync: given the keys the caller already
// has, the daemon answers with the store entries it holds beyond them.
func (c *Client) FleetSync(ctx context.Context, req *wire.FleetSyncRequest) (*wire.FleetSyncResponse, error) {
	var resp wire.FleetSyncResponse
	if err := c.do(ctx, http.MethodPost, wire.PathFleetSync, req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// PutSignature calls PUT /v1/signatures/{key} with sig as the body. The key
// must match the signature's own (app, cores, machine) identity.
func (c *Client) PutSignature(ctx context.Context, key string, sig *tracex.Signature) (*wire.StorePutResponse, error) {
	var resp wire.StorePutResponse
	if err := c.do(ctx, http.MethodPut, wire.PathSignaturePrefix+key, sig, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Apps calls GET /v1/apps.
func (c *Client) Apps(ctx context.Context) ([]string, error) {
	var resp wire.AppsResponse
	if err := c.do(ctx, http.MethodGet, wire.PathApps, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Apps, nil
}

// Machines calls GET /v1/machines.
func (c *Client) Machines(ctx context.Context) ([]string, error) {
	var resp wire.MachinesResponse
	if err := c.do(ctx, http.MethodGet, wire.PathMachines, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Machines, nil
}

// Ready calls GET /readyz and reports the daemon's status string ("ready"
// or "draining").
func (c *Client) Ready(ctx context.Context) (string, error) {
	var resp wire.HealthResponse
	if err := c.do(ctx, http.MethodGet, wire.PathReadyz, nil, &resp); err != nil {
		return "", err
	}
	return resp.Status, nil
}

// do runs one call: marshal, send, decode — retrying 429s per the backoff
// schedule. in == nil sends no body. The request body is marshalled once
// and replayed across attempts.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	for attempt := 0; ; attempt++ {
		apiErr, err := c.once(ctx, method, path, body, out)
		if err != nil {
			return err
		}
		if apiErr == nil {
			return nil
		}
		if attempt >= c.retries || !retryable(apiErr) {
			return apiErr
		}
		if err := c.sleep(ctx, c.backoff(attempt, apiErr.RetryAfter)); err != nil {
			return err
		}
	}
}

// / retryable reports whether an API error is transient enough to retry:
// admission-control overload (429) or temporary unavailability (503).
func retryable(err *APIError) bool {
	return errors.Is(err, ErrOverloaded) || errors.Is(err, ErrUnavailable)
}

// once performs a single HTTP exchange. A non-2xx response comes back as a
// non-nil *APIError with a nil error; transport failures come back in err.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (*APIError, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp), nil
	}
	if out == nil {
		return nil, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return nil, nil
}

// decodeError turns a non-2xx response into an *APIError, preferring the
// structured wire.ErrorBody and falling back to the raw body text when a
// middlebox answered with something else.
func decodeError(resp *http.Response) *APIError {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	apiErr := &APIError{Status: resp.StatusCode}
	var eb wire.ErrorBody
	if err := json.Unmarshal(raw, &eb); err == nil && eb.Error.Code != "" {
		apiErr.Code = eb.Error.Code
		apiErr.Message = eb.Error.Message
		apiErr.RetryAfter = time.Duration(eb.Error.RetryAfterSeconds) * time.Second
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	// The Retry-After header is authoritative when present (it always
	// mirrors the body on tracexd, but a proxy may send only the header).
	if h := resp.Header.Get("Retry-After"); h != "" {
		if secs, err := strconv.Atoi(h); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// backoff computes the wait before retry number attempt (0-based):
// exponential from the base, raised to the server's Retry-After when that
// is longer, and always capped.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.backoffBase << uint(attempt)
	if d <= 0 || d > c.backoffMax { // <<-overflow guard and cap
		d = c.backoffMax
	}
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	return d
}

// sleepCtx waits for d or the context, whichever ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
