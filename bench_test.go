// Benchmarks regenerating every table and figure of the paper's evaluation
// section (one benchmark per exhibit), plus the repository's ablations and
// pipeline-stage throughput measurements. Each exhibit benchmark reports
// its headline numbers as custom metrics and prints the table rows once.
package tracex_test

import (
	"context"
	"sync"
	"testing"

	"tracex"
	"tracex/internal/expt"
	"tracex/internal/mpi"
	"tracex/internal/psins"
)

// benchConfig keeps per-iteration cost moderate while preserving the
// steady-state warm-up that the multi-megabyte random regions need.
var benchConfig = expt.Config{
	Collect: tracex.CollectOptions{SampleRefs: 150_000, MaxWarmRefs: 1_000_000},
}

var printOnce sync.Map

// logOnce prints a table header and rows a single time per benchmark name.
func logOnce(b *testing.B, name string, rows func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		rows()
	}
}

// BenchmarkTable1 regenerates Table I: target-scale runtime predictions
// from extrapolated vs collected traces for SPECFEM3D (6144 cores) and
// UH3D (8192 cores), against the detailed-simulation measured runtime.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table1(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		var maxErr float64
		for _, r := range rows {
			if r.PctError > maxErr {
				maxErr = r.PctError
			}
		}
		b.ReportMetric(maxErr, "max_pct_error")
		logOnce(b, "table1", func() {
			for _, r := range rows {
				b.Logf("Table I: %-10s %5d %-7s predicted %7.1f s measured %7.1f s err %.1f%%",
					r.App, r.CoreCount, r.TraceType, r.Predicted, r.Measured, r.PctError)
			}
		})
	}
}

// BenchmarkTable2 regenerates Table II: the field_update block's cache hit
// rates on the target system as UH3D strong-scales from 1024 to 8192 cores.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table2(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].L3-rows[0].L3, "L3_rise_pts")
		logOnce(b, "table2", func() {
			for _, r := range rows {
				b.Logf("Table II: %5d cores L1 %.1f%% L2 %.1f%% L3 %.1f%%", r.CoreCount, r.L1, r.L2, r.L3)
			}
		})
	}
}

// BenchmarkTable3 regenerates Table III: the lookup-table block's L1 hit
// rate on two candidate systems differing only in L1 size.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table3(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SystemB-rows[0].SystemA, "residency_gap_pts")
		logOnce(b, "table3", func() {
			for _, r := range rows {
				b.Logf("Table III: %5d cores A(12KB) %.1f%% B(56KB) %.1f%%", r.CoreCount, r.SystemA, r.SystemB)
			}
		})
	}
}

// BenchmarkFigure1 regenerates Figure 1: the MultiMAPS bandwidth surface of
// the two-level Opteron.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		var min, max float64
		for _, r := range rows {
			if min == 0 || r.BandwidthGBs < min {
				min = r.BandwidthGBs
			}
			if r.BandwidthGBs > max {
				max = r.BandwidthGBs
			}
		}
		b.ReportMetric(max/min, "bw_dynamic_range")
		b.ReportMetric(float64(len(rows)), "surface_points")
	}
}

// BenchmarkFigure3 regenerates Figure 3: independent per-element
// extrapolation of one basic block's feature vector.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Figure3(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(rows)), "elements")
	}
}

// BenchmarkFigure4 regenerates Figure 4: the linearly rising L2 hit rate of
// a single block, with all four canonical fits (linear must win).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := expt.Figure4(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		if fs.Selected != "linear" {
			b.Fatalf("Figure 4 selected %s, want linear", fs.Selected)
		}
		logOnce(b, "figure4", func() {
			for j, x := range fs.Counts {
				b.Logf("Figure 4: %5.0f cores L2 HR %.4f", x, fs.Measured[j])
			}
		})
	}
}

// BenchmarkFigure5 regenerates Figure 5: the logarithmically growing memory
// operation count of a single block (logarithmic must win).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := expt.Figure5(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		if fs.Selected != "logarithmic" {
			b.Fatalf("Figure 5 selected %s, want logarithmic", fs.Selected)
		}
	}
}

// BenchmarkInfluentialError regenerates the Section IV in-text claim: the
// maximum extrapolation error over influential blocks' elements (<20 %).
func BenchmarkInfluentialError(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.InfluentialElementError(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		var max float64
		for _, r := range rows {
			if r.MaxError > max {
				max = r.MaxError
			}
		}
		b.ReportMetric(100*max, "max_element_err_pct")
	}
}

// BenchmarkAblationForms measures extrapolation accuracy across canonical-
// form subsets and the future-work extended set.
func BenchmarkAblationForms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.AblationForms(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, "ablationforms", func() {
			for _, r := range rows {
				b.Logf("forms %-22s %-10s max %.1f%% mean %.1f%%",
					r.FormSet, r.App, 100*r.MaxError, 100*r.MeanErr)
			}
		})
	}
}

// BenchmarkAblationInputCounts measures extrapolation accuracy as a
// function of the number of input core counts.
func BenchmarkAblationInputCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationInputCounts(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClustering compares uniform (slowest-task) rank scaling
// against the future-work per-cluster pricing.
func BenchmarkAblationClustering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationClustering(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeakScaling measures the weak-vs-strong scaling extension
// (Future Work §VI).
func BenchmarkWeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.WeakScaling(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Regime == "weak" {
				b.ReportMetric(r.PredErrPct, "weak_pred_err_pct")
			}
		}
	}
}

// BenchmarkCommExtrap measures the communication-trace extrapolation
// complement (ScalaExtrap-style).
func BenchmarkCommExtrap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.CommExtrap(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			for _, e := range r.FieldErrors {
				if e > worst {
					worst = e
				}
			}
		}
		b.ReportMetric(100*worst, "worst_field_err_pct")
	}
}

// BenchmarkEnergyDVFS measures the energy/DVFS extension priced from
// extrapolated traces.
func BenchmarkEnergyDVFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.EnergyDVFS(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].OptEnergyF, "specfem_opt_freq")
	}
}

// BenchmarkPrefetchExploration measures the hardware-prefetcher design
// study (Table III-style exploration of a knob the paper didn't cover).
func BenchmarkPrefetchExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.PrefetchExploration(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.App == "specfem3d" {
				b.ReportMetric(r.SpeedupPct, "specfem_speedup_pct")
			}
		}
	}
}

// BenchmarkCrossArch measures the cross-architectural prediction experiment
// (paper §III-A).
func BenchmarkCrossArch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.CrossArch(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.PctError > worst {
				worst = r.PctError
			}
		}
		b.ReportMetric(worst, "worst_pct_error")
	}
}

// BenchmarkAblationDistance measures the extrapolation-distance ablation.
func BenchmarkAblationDistance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationDistance(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCollectionMode measures the private-vs-shared
// signature-collection ablation.
func BenchmarkAblationCollectionMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := expt.AblationCollectionMode(benchConfig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineEndToEnd measures the full quickstart pipeline (profile,
// collect ×3, extrapolate, predict, measure) at small scale — the cost a
// user pays for one complete analysis. Caching is disabled so every
// iteration pays the full simulation cost.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	app, err := tracex.LoadApp("stencil3d")
	if err != nil {
		b.Fatal(err)
	}
	target, err := tracex.LoadMachine("bluewaters")
	if err != nil {
		b.Fatal(err)
	}
	opt := tracex.CollectOptions{SampleRefs: 100_000, MaxWarmRefs: 400_000}
	eng := tracex.NewEngine(tracex.WithCacheSize(0))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := eng.Profile(ctx, target)
		if err != nil {
			b.Fatal(err)
		}
		inputs, err := eng.CollectInputs(ctx, app, []int{64, 128, 256}, target, opt)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Extrapolate(ctx, inputs, 512, tracex.ExtrapOptions{})
		if err != nil {
			b.Fatal(err)
		}
		req := tracex.PredictRequest{Signature: res.Signature, App: app, Profile: prof}
		if _, err := eng.Predict(ctx, req); err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Measure(ctx, app, 512, target, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay8192Ranks measures the discrete-event replay engine on the
// paper's largest configuration (8192 ranks of UH3D's event trace).
func BenchmarkReplay8192Ranks(b *testing.B) {
	app, err := tracex.LoadApp("uh3d")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := tracex.Program(app, 8192)
	if err != nil {
		b.Fatal(err)
	}
	target, _ := tracex.LoadMachine("bluewaters")
	net, err := psins.NewNetwork(target.Network)
	if err != nil {
		b.Fatal(err)
	}
	cost := func(rank int, blockID uint64, share float64) (float64, error) {
		return 0.001 * share, nil
	}
	var events int
	for _, evs := range prog.Ranks {
		events += len(evs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psins.Replay(prog, net, cost); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkSignatureCollection measures the instrumentation-emulation and
// cache-simulation throughput of one full signature collection.
func BenchmarkSignatureCollection(b *testing.B) {
	app, err := tracex.LoadApp("uh3d")
	if err != nil {
		b.Fatal(err)
	}
	target, _ := tracex.LoadMachine("bluewaters")
	opt := tracex.CollectOptions{SampleRefs: 200_000, MaxWarmRefs: 1_000_000}
	eng := tracex.NewEngine(tracex.WithCacheSize(0))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.CollectSignature(ctx, app, 2048, target, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrid3DFactorization measures rank-grid factorization across the
// paper's core counts.
func BenchmarkGrid3DFactorization(b *testing.B) {
	counts := []int{96, 384, 1024, 1536, 2048, 4096, 6144, 8192}
	for i := 0; i < b.N; i++ {
		for _, n := range counts {
			if _, err := mpi.NewGrid3D(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkScalingCurve measures the predicted strong-scaling-curve
// extension (five extrapolation targets from one input set).
func BenchmarkScalingCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.ScalingCurve(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		var worst float64
		for _, r := range rows {
			if r.PctError > worst {
				worst = r.PctError
			}
		}
		b.ReportMetric(worst, "worst_pct_error")
	}
}

// BenchmarkCalibration measures the machine-profile inverse problem demo.
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.CalibrationDemo(benchConfig)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rows[0].CalibratedErr, "calibrated_err_pct")
	}
}
