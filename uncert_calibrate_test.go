package tracex

import (
	"context"
	"testing"
)

// TestCalibrationCoverage is the interval-calibration acceptance bar: on a
// reduced app × machine matrix, the 90% prediction interval's held-out
// empirical coverage must land in [0.75, 1.0]. Too low means the posterior
// is overconfident; the upper bound is trivially satisfied but pins the
// harness to a real fraction.
func TestCalibrationCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration matrix in -short mode")
	}
	eng := NewEngine()
	defer eng.Close()
	rep, err := eng.CalibrateIntervals(context.Background(), CalibrationConfig{
		Apps:     []string{"stencil3d", "cgsolve"},
		Machines: []string{"bluewaters", "kraken"},
		Collect:  CollectOptions{SampleRefs: 20000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 4 {
		t.Fatalf("expected 4 calibration cells, got %d", len(rep.Cells))
	}
	for _, cell := range rep.Cells {
		if cell.Actual <= 0 || cell.Predicted <= 0 {
			t.Errorf("cell %s/%s has non-positive runtimes: %+v", cell.App, cell.Machine, cell)
		}
		if len(cell.Bands) != len(DefaultIntervalLevels()) {
			t.Errorf("cell %s/%s has %d bands, want %d", cell.App, cell.Machine, len(cell.Bands), len(DefaultIntervalLevels()))
		}
		for _, b := range cell.Bands {
			if !(b.Lo <= cell.Predicted && cell.Predicted <= b.Hi) {
				t.Errorf("cell %s/%s: band %+v does not bracket the prediction %.3f", cell.App, cell.Machine, b, cell.Predicted)
			}
		}
	}
	cov := rep.CoverageAt(0.9)
	if cov < 0.75 || cov > 1.0 {
		t.Errorf("90%% interval coverage = %.3f, want within [0.75, 1.0]", cov)
	}
	// Wider levels can never cover less than narrower ones on the same cells.
	if c50, c95 := rep.CoverageAt(0.5), rep.CoverageAt(0.95); c50 > cov || cov > c95 {
		t.Errorf("coverage not monotone in level: 50%%=%.3f 90%%=%.3f 95%%=%.3f", c50, cov, c95)
	}
}
