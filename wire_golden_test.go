package tracex

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// These tests pin the on-disk and over-the-wire encodings that external
// consumers depend on: signature files written by the CLI and read back
// by extrapolation, and the study rows served by tracexd. A drift in
// field names, ordering or shape fails against the checked-in goldens.

// goldenSignature builds a small, fully-populated, valid signature by
// hand, so the golden bytes are independent of the collection pipeline.
func goldenSignature() *Signature {
	fv := func(scale float64) FeatureVector {
		return FeatureVector{
			FPOps: 1000 * scale, FPAdd: 500 * scale, FPMul: 400 * scale, FPDivSqrt: 100 * scale,
			MemOps: 2000 * scale, Loads: 1500 * scale, Stores: 500 * scale,
			BytesPerRef: 8, HitRates: []float64{0.85, 0.95, 0.99},
			WorkingSetBytes: 1 << 20, ILP: 2.5, PrefetchPerRef: 0.125,
		}
	}
	mkTrace := func(rank int) Trace {
		return Trace{
			App: "stencil3d", CoreCount: 64, Rank: rank, Machine: "bluewaters", Levels: 3,
			Blocks: []Block{
				{ID: 11, Func: "stencil_sweep", File: "stencil.c", Line: 42, FV: fv(1)},
				{ID: 23, Func: "halo_exchange", File: "halo.c", Line: 17, FV: fv(0.25)},
			},
		}
	}
	return &Signature{
		App: "stencil3d", CoreCount: 64, Machine: "bluewaters",
		Traces: []Trace{mkTrace(0), mkTrace(1)},
	}
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%s (rerun with -update to regenerate): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted:\n got: %s\nwant: %s", name, got, want)
	}
}

func TestSignatureGoldenRoundTrip(t *testing.T) {
	sig := goldenSignature()
	if err := sig.Validate(); err != nil {
		t.Fatalf("golden signature invalid: %v", err)
	}
	got, err := json.MarshalIndent(sig, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	checkGolden(t, "signature.golden.json", got)

	// Round-trip: the decoded signature must validate and match exactly.
	var back Signature
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("golden signature does not decode: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped signature invalid: %v", err)
	}
	if !reflect.DeepEqual(&back, sig) {
		t.Error("signature changed across a JSON round-trip")
	}
}

func TestStudyRowsGolden(t *testing.T) {
	res := &StudyResult{Targets: []StudyTarget{
		{
			TargetCores:  512,
			Extrapolated: &Prediction{Runtime: 10.5},
			Collected:    &Prediction{Runtime: 10.0},
		},
		{
			TargetCores:  1024,
			Extrapolated: &Prediction{Runtime: 21.25},
			// No truth collection at this count: actual/error stay zero.
		},
	}}
	got, err := json.MarshalIndent(res.Rows(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	checkGolden(t, "study_rows.golden.json", got)

	// Round-trip: rows decode into the same values.
	var back []StudyRow
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("golden rows do not decode: %v", err)
	}
	if !reflect.DeepEqual(back, res.Rows()) {
		t.Error("study rows changed across a JSON round-trip")
	}
	// Target lookups agree with the rows.
	if tgt := res.Target(512); tgt == nil || tgt.Extrapolated.Runtime != 10.5 {
		t.Errorf("Target(512) = %+v", res.Target(512))
	}
	if res.Target(2048) != nil {
		t.Error("Target(2048) found a target the study never evaluated")
	}
}

func TestCanonicalRequestKey(t *testing.T) {
	type req struct {
		App   string `json:"app"`
		Cores int    `json:"cores"`
	}
	k1, err := CanonicalRequestKey("predict", &req{App: "stencil3d", Cores: 64})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalRequestKey("predict", &req{App: "stencil3d", Cores: 64})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("identical requests produced different keys: %s vs %s", k1, k2)
	}
	if !strings.HasPrefix(k1, "predict:") {
		t.Errorf("key %q does not carry its kind prefix", k1)
	}
	k3, err := CanonicalRequestKey("study", &req{App: "stencil3d", Cores: 64})
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different kinds share a key")
	}
	k4, err := CanonicalRequestKey("predict", &req{App: "stencil3d", Cores: 128})
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Error("different requests share a key")
	}
	if _, err := CanonicalRequestKey("predict", func() {}); err == nil {
		t.Error("unmarshalable request accepted")
	}
}
