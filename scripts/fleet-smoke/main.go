// Command fleet-smoke is the distributed acceptance check for tracexd's
// fleet mode: it builds the daemon, boots a 3-process cluster on loopback
// ports, and proves the cluster-wide collection contract end to end —
// the same identity predicted at every node is simulated exactly once
// (on its rendezvous owner, observed via the pebil.* counters in
// /metrics), served with provenance "peer" everywhere else, and survives
// the owner dying by degrading to local collection. Zero 5xx allowed.
//
//	go run ./scripts/fleet-smoke            # CI smoke (make fleet-smoke)
//	go run ./scripts/fleet-smoke -bench     # also measure cold fill and
//	                                        # replication into BENCH_fleet.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"tracex/internal/fleet"
)

const (
	smokeApp     = "stencil3d"
	smokeMachine = "bluewaters"
	// smokeRefs keeps each real collection in the hundreds of milliseconds.
	smokeRefs = 20_000
)

func main() {
	bench := flag.Bool("bench", false, "also measure cold fleet fill vs single node and warm-start replication")
	out := flag.String("out", "BENCH_fleet.json", "result file for -bench")
	flag.Parse()
	if err := run(*bench, *out); err != nil {
		fmt.Fprintln(os.Stderr, "fleet-smoke: FAIL:", err)
		os.Exit(1)
	}
}

func run(bench bool, out string) error {
	tmp, err := os.MkdirTemp("", "fleet-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "tracexd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/tracexd")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building tracexd: %w", err)
	}

	if err := smoke(tmp, bin); err != nil {
		return err
	}
	fmt.Println("fleet-smoke: PASS")
	if bench {
		if err := runBench(tmp, bin, out); err != nil {
			return err
		}
	}
	return nil
}

// node is one tracexd process under test.
type node struct {
	url  string
	dir  string
	cmd  *exec.Cmd
	logs *bytes.Buffer
}

// reserveURLs picks n distinct loopback ports by binding and releasing
// them. A tiny race window against other processes is acceptable in a
// smoke test.
func reserveURLs(n int) ([]string, error) {
	urls := make([]string, n)
	for i := range urls {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		urls[i] = "http://" + ln.Addr().String()
		ln.Close()
	}
	return urls, nil
}

// startNode launches one daemon and waits for /readyz. peers == "" starts
// a single-node daemon.
func startNode(tmp, bin, url, peers string, extra ...string) (*node, error) {
	n := &node{
		url:  url,
		dir:  filepath.Join(tmp, strings.ReplaceAll(strings.TrimPrefix(url, "http://"), ":", "-")),
		logs: &bytes.Buffer{},
	}
	args := []string{
		"-addr", strings.TrimPrefix(url, "http://"),
		"-store-dir", n.dir,
		// Generous admission for a 1-CPU CI host: an owner fields its own
		// predict plus two delegated collections at once.
		"-max-inflight", "8", "-queue-wait", "30s",
		"-quiet",
	}
	if peers != "" {
		args = append(args, "-peers", peers, "-advertise", url)
	}
	args = append(args, extra...)
	n.cmd = exec.Command(bin, args...)
	n.cmd.Stdout, n.cmd.Stderr = n.logs, n.logs
	if err := n.cmd.Start(); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return n, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	n.stop()
	return nil, fmt.Errorf("node %s never became ready; logs:\n%s", url, n.logs)
}

func (n *node) stop() {
	if n.cmd.Process != nil {
		_ = n.cmd.Process.Kill()
		_ = n.cmd.Wait()
	}
}

// predict issues one triple predict and returns the HTTP status and the
// response's provenance ("from") field.
func predict(url string, cores int) (status int, from string, err error) {
	body := fmt.Sprintf(`{"app":%q,"cores":%d,"machine":%q,"sample_refs":%d}`,
		smokeApp, cores, smokeMachine, smokeRefs)
	resp, err := http.Post(url+"/v1/predict", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	var pr struct {
		From string `json:"from"`
	}
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &pr)
	return resp.StatusCode, pr.From, nil
}

// counter reads one counter from a node's /metrics JSON snapshot.
func counter(url, name string) (float64, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, err
	}
	for _, m := range snap.Metrics {
		if m.Name == name {
			return m.Value, nil
		}
	}
	return 0, nil
}

// ownedCores returns a stencil3d core count whose identity the ring
// assigns to owner.
func ownedCores(ring *fleet.Ring, owner string) (int, error) {
	for cores := 8; cores <= 16384; cores *= 2 {
		if ring.Owner(fmt.Sprintf("%s@%d@%s", smokeApp, cores, smokeMachine)) == owner {
			return cores, nil
		}
	}
	return 0, fmt.Errorf("no stencil3d identity owned by %s", owner)
}

// smoke runs the 3-node acceptance sequence.
func smoke(tmp, bin string) error {
	urls, err := reserveURLs(3)
	if err != nil {
		return err
	}
	peers := strings.Join(urls, ",")
	nodes := make([]*node, len(urls))
	for i, url := range urls {
		// Replication off: the smoke wants deterministic counters, and all
		// stores start empty anyway.
		n, err := startNode(tmp, bin, url, peers, "-no-replicate")
		if err != nil {
			return err
		}
		defer n.stop()
		nodes[i] = n
	}

	ring := fleet.NewRing(urls)
	cores, err := ownedCores(ring, ring.Owner(fmt.Sprintf("%s@8@%s", smokeApp, smokeMachine)))
	if err != nil {
		return err
	}
	key := fmt.Sprintf("%s@%d@%s", smokeApp, cores, smokeMachine)
	owner := ring.Owner(key)
	fmt.Printf("fleet-smoke: 3 nodes up; %s owned by %s\n", key, owner)

	// The same identity against all three nodes: every answer 200, the
	// non-owners answering "peer".
	peerAnswers := 0
	for _, n := range nodes {
		status, from, err := predict(n.url, cores)
		if err != nil {
			return fmt.Errorf("predict %s on %s: %w", key, n.url, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("predict %s on %s: status %d; logs:\n%s", key, n.url, status, n.logs)
		}
		if n.url == owner {
			if from == "peer" {
				return fmt.Errorf("owner %s answered with provenance \"peer\"", n.url)
			}
		} else if from == "peer" {
			peerAnswers++
		} else {
			return fmt.Errorf("non-owner %s answered from %q, want \"peer\"", n.url, from)
		}
	}
	if peerAnswers != 2 {
		return fmt.Errorf("%d \"peer\" answers, want 2", peerAnswers)
	}

	// Exactly one collection cluster-wide: pebil.blocks counts simulated
	// basic blocks, so it is zero on every node that did not collect.
	simulated := 0
	for _, n := range nodes {
		blocks, err := counter(n.url, "pebil.blocks")
		if err != nil {
			return fmt.Errorf("reading metrics from %s: %w", n.url, err)
		}
		if blocks > 0 {
			simulated++
			if n.url != owner {
				return fmt.Errorf("non-owner %s simulated a collection (pebil.blocks=%g)", n.url, blocks)
			}
		}
	}
	if simulated != 1 {
		return fmt.Errorf("%d nodes simulated the collection, want exactly 1", simulated)
	}
	fmt.Printf("fleet-smoke: exactly-once verified (1 simulation on the owner, 2 \"peer\" answers)\n")

	// Owner down: a fresh identity owned by the dead node must still be
	// served by a survivor, collected locally.
	for i, n := range nodes {
		if n.url == owner {
			n.stop()
			nodes = append(nodes[:i], nodes[i+1:]...)
			break
		}
	}
	downCores, err := ownedCores(ring, owner)
	if err != nil {
		return err
	}
	if downCores == cores {
		for c := cores * 2; ; c *= 2 {
			if c > 16384 {
				return fmt.Errorf("no second identity owned by %s", owner)
			}
			if ring.Owner(fmt.Sprintf("%s@%d@%s", smokeApp, c, smokeMachine)) == owner {
				downCores = c
				break
			}
		}
	}
	status, from, err := predict(nodes[0].url, downCores)
	if err != nil {
		return fmt.Errorf("predict with owner down: %w", err)
	}
	if status != http.StatusOK || from != "collected" {
		return fmt.Errorf("predict with owner down: status %d from %q, want 200 \"collected\"; logs:\n%s",
			status, from, nodes[0].logs)
	}
	fmt.Printf("fleet-smoke: owner-down fallback verified (local collect on a survivor)\n")
	return nil
}

// fleetBenchFile is the BENCH_fleet.json layout.
type fleetBenchFile struct {
	Description string            `json:"description"`
	Date        string            `json:"date"`
	Environment map[string]string `json:"environment"`
	Identities  int               `json:"identities"`
	SampleRefs  int               `json:"sample_refs"`
	// SingleColdFillSeconds: one daemon collects every identity itself.
	SingleColdFillSeconds float64 `json:"single_node_cold_fill_seconds"`
	// FleetColdFillSeconds: every identity predicted at all three nodes;
	// owners collect once, the rest peer-fetch.
	FleetColdFillSeconds float64 `json:"fleet_cold_fill_seconds"`
	// ReplicationSeconds: a wiped node rejoins and pulls its owned keys.
	ReplicationSeconds float64 `json:"warm_start_replication_seconds"`
	ReplicationPulled  int     `json:"warm_start_replication_pulled"`
}

// benchCores are the identities the bench fills: 6 distinct core counts.
var benchCores = []int{8, 16, 32, 64, 128, 256}

// runBench measures cold fill (single node vs 3-node fleet) and
// warm-start replication, writing the results to out.
func runBench(tmp, bin, out string) error {
	// Single-node cold fill.
	urls, err := reserveURLs(1)
	if err != nil {
		return err
	}
	solo, err := startNode(tmp, bin, urls[0], "")
	if err != nil {
		return err
	}
	start := time.Now()
	for _, cores := range benchCores {
		if status, _, err := predict(solo.url, cores); err != nil || status != http.StatusOK {
			solo.stop()
			return fmt.Errorf("single-node fill at %d cores: status %d, %v", cores, status, err)
		}
	}
	singleFill := time.Since(start).Seconds()
	solo.stop()

	// Fleet cold fill: the same identities, each predicted at every node.
	urls, err = reserveURLs(3)
	if err != nil {
		return err
	}
	peers := strings.Join(urls, ",")
	nodes := make([]*node, len(urls))
	for i, url := range urls {
		n, err := startNode(tmp, bin, url, peers, "-no-replicate")
		if err != nil {
			return err
		}
		defer n.stop()
		nodes[i] = n
	}
	start = time.Now()
	for _, cores := range benchCores {
		for _, n := range nodes {
			if status, _, err := predict(n.url, cores); err != nil || status != http.StatusOK {
				return fmt.Errorf("fleet fill at %d cores on %s: status %d, %v", cores, n.url, status, err)
			}
		}
	}
	fleetFill := time.Since(start).Seconds()

	// Warm-start replication: wipe one node and let it rejoin. Its pull
	// target is however many bench identities the ring assigns to it.
	ring := fleet.NewRing(urls)
	victim := nodes[0]
	owned := 0
	for _, cores := range benchCores {
		if ring.Owner(fmt.Sprintf("%s@%d@%s", smokeApp, cores, smokeMachine)) == victim.url {
			owned++
		}
	}
	victim.stop()
	if err := os.RemoveAll(victim.dir); err != nil {
		return err
	}
	start = time.Now()
	reborn, err := startNode(tmp, bin, victim.url, peers)
	if err != nil {
		return err
	}
	defer reborn.stop()
	var pulled float64
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if pulled, err = counter(reborn.url, "fleet.replication.pulled"); err == nil && int(pulled) >= owned {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	repl := time.Since(start).Seconds()
	if int(pulled) < owned {
		return fmt.Errorf("replication pulled %d of %d owned identities within 30s; logs:\n%s",
			int(pulled), owned, reborn.logs)
	}

	bf := &fleetBenchFile{
		Description: "Distributed tracexd fleet: wall-clock to serve the same identity set from every node. " +
			"Single-node cold fill collects each identity once locally; fleet cold fill predicts each identity " +
			"at all three nodes (the owner collects exactly once, the others peer-fetch); warm-start replication " +
			"is a wiped node rejoining and pulling its owned keys from peers. Regenerate with `make bench-fleet`.",
		Date: time.Now().UTC().Format("2006-01-02"),
		Environment: map[string]string{
			"goos": runtime.GOOS, "goarch": runtime.GOARCH,
			"cpus": fmt.Sprintf("%d", runtime.NumCPU()),
		},
		Identities: len(benchCores), SampleRefs: smokeRefs,
		SingleColdFillSeconds: round3(singleFill),
		FleetColdFillSeconds:  round3(fleetFill),
		ReplicationSeconds:    round3(repl),
		ReplicationPulled:     int(pulled),
	}
	b, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("fleet-bench: single cold fill %.2fs, fleet cold fill %.2fs, replication %.2fs (%d keys); wrote %s\n",
		singleFill, fleetFill, repl, int(pulled), out)
	return nil
}

func round3(f float64) float64 { return float64(int(f*1000)) / 1000 }
