// Command sampling-bench compares the adaptive sampling policy against the
// fixed default on the paper's Table I workloads: for each application it
// measures the predicted runtime and the number of simulated references
// under both policies, then reports the runtime drift and the reference
// (collection-cost) ratio. Results are recorded into BENCH_collect.json,
// merging with runs recorded under other labels — the same
// accumulate-by-label layout as BENCH_serve.json and BENCH_uncert.json.
//
//	go run ./scripts/sampling-bench                   # full set → BENCH_collect.json
//	go run ./scripts/sampling-bench -label smoke \
//	    -assert-min-ratio 3 -assert-max-drift 0.01    # CI smoke with acceptance gates
//
// The -assert flags turn the run into a pass/fail check: the adaptive
// policy must simulate at least min-ratio× fewer references than the fixed
// default while predicting a runtime within max-drift (relative) of it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tracex"
	"tracex/internal/expt"
)

// appCase is one benchmarked workload: a Table I application at its paper
// extrapolation-target core count.
type appCase struct {
	App   string
	Cores int
}

func defaultCases() []appCase {
	var cases []appCase
	for _, spec := range expt.PaperSpecs() {
		cases = append(cases, appCase{App: spec.App, Cores: spec.TargetCount})
	}
	return cases
}

func main() {
	fs := flag.NewFlagSet("sampling-bench", flag.ExitOnError)
	outPath := fs.String("out", "BENCH_collect.json", "result file to create or update (\"\" = stdout only)")
	label := fs.String("label", "full", "label this run is recorded under in the result file")
	apps := fs.String("apps", "", "comma-separated applications (default: the Table I set at its paper core counts)")
	policy := fs.String("policy", "adaptive:0.05", "adaptive policy to benchmark against the fixed default")
	assertMinRatio := fs.Float64("assert-min-ratio", -1, "fail unless every app's fixed/adaptive simulated-reference ratio is at least this (-1 disables)")
	assertMaxDrift := fs.Float64("assert-max-drift", -1, "fail unless every app's relative runtime drift is at most this (-1 disables)")
	_ = fs.Parse(os.Args[1:]) // ExitOnError: Parse never returns an error

	pol, err := tracex.ParseSamplingPolicy(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sampling-bench: %v\n", err)
		os.Exit(1)
	}
	cases := defaultCases()
	if *apps != "" {
		byName := map[string]appCase{}
		for _, c := range cases {
			byName[c.App] = c
		}
		cases = nil
		for _, name := range splitList(*apps) {
			c, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "sampling-bench: %q is not a Table I application\n", name)
				os.Exit(1)
			}
			cases = append(cases, c)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	target := expt.TargetMachine()
	rec := &run{Policy: pol.String()}
	start := time.Now()
	fmt.Printf("%-12s %6s %14s %14s %8s %14s %14s %7s\n",
		"Application", "Cores", "Fixed(s)", "Adaptive(s)", "Drift", "FixedRefs", "AdaptRefs", "Ratio")
	for _, c := range cases {
		fixed, err := measure(ctx, c, target, tracex.CollectOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sampling-bench: %s fixed: %v\n", c.App, err)
			os.Exit(1)
		}
		adaptive, err := measure(ctx, c, target, tracex.CollectOptions{Sampling: pol})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sampling-bench: %s adaptive: %v\n", c.App, err)
			os.Exit(1)
		}
		row := appRow{
			App: c.App, Cores: c.Cores,
			FixedRuntime: fixed.runtime, AdaptiveRuntime: adaptive.runtime,
			FixedRefs: fixed.refs, AdaptiveRefs: adaptive.refs,
			FixedSeconds: fixed.elapsed.Seconds(), AdaptiveSeconds: adaptive.elapsed.Seconds(),
			Drift:     math.Abs(adaptive.runtime-fixed.runtime) / fixed.runtime,
			RefsRatio: float64(fixed.refs) / float64(adaptive.refs),
		}
		rec.Rows = append(rec.Rows, row)
		fmt.Printf("%-12s %6d %14.2f %14.2f %7.2f%% %14d %14d %6.1fx\n",
			row.App, row.Cores, row.FixedRuntime, row.AdaptiveRuntime, 100*row.Drift,
			row.FixedRefs, row.AdaptiveRefs, row.RefsRatio)
	}
	rec.ElapsedSeconds = time.Since(start).Seconds()

	if *outPath != "" {
		if err := writeBenchFile(*outPath, *label, rec); err != nil {
			fmt.Fprintf(os.Stderr, "sampling-bench: writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("recorded run %q in %s\n", *label, *outPath)
	}

	ok := true
	for _, row := range rec.Rows {
		if *assertMinRatio >= 0 && row.RefsRatio < *assertMinRatio {
			fmt.Fprintf(os.Stderr, "sampling-bench: %s reference ratio %.2f below the asserted minimum %.2f\n",
				row.App, row.RefsRatio, *assertMinRatio)
			ok = false
		}
		if *assertMaxDrift >= 0 && row.Drift > *assertMaxDrift {
			fmt.Fprintf(os.Stderr, "sampling-bench: %s runtime drift %.4f above the asserted maximum %.4f\n",
				row.App, row.Drift, *assertMaxDrift)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// result is one measured policy run: predicted runtime, simulated
// references (from the collector's obs counters) and wall-clock time.
type result struct {
	runtime float64
	refs    uint64
	elapsed time.Duration
}

// measure runs one collection + prediction under opt in a fresh engine, so
// the reference counters and memo caches of the two policies never mix.
func measure(ctx context.Context, c appCase, target tracex.MachineConfig, opt tracex.CollectOptions) (result, error) {
	app, err := tracex.LoadApp(c.App)
	if err != nil {
		return result{}, err
	}
	eng := tracex.NewEngine()
	if err := eng.Err(); err != nil {
		return result{}, err
	}
	defer eng.Close()
	start := time.Now()
	pred, err := eng.Measure(ctx, app, c.Cores, target, opt)
	if err != nil {
		return result{}, err
	}
	elapsed := time.Since(start)
	reg := eng.Registry()
	refs := reg.Counter("pebil.warm_refs").Value() +
		reg.Counter("pebil.sample_refs").Value() +
		reg.Counter("pebil.sampling.pilot_refs").Value() +
		reg.Counter("pebil.sampling.refined_refs").Value()
	return result{runtime: pred.Runtime, refs: refs, elapsed: elapsed}, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// appRow is one application's fixed-vs-adaptive comparison.
type appRow struct {
	App             string  `json:"app"`
	Cores           int     `json:"cores"`
	FixedRuntime    float64 `json:"fixed_runtime_seconds"`
	AdaptiveRuntime float64 `json:"adaptive_runtime_seconds"`
	Drift           float64 `json:"drift"`
	FixedRefs       uint64  `json:"fixed_refs"`
	AdaptiveRefs    uint64  `json:"adaptive_refs"`
	RefsRatio       float64 `json:"refs_ratio"`
	FixedSeconds    float64 `json:"fixed_seconds"`
	AdaptiveSeconds float64 `json:"adaptive_seconds"`
}

// run is one labeled record in BENCH_collect.json.
type run struct {
	Policy         string   `json:"policy"`
	Rows           []appRow `json:"rows"`
	ElapsedSeconds float64  `json:"elapsed_seconds"`
}

// samplingSection is the "sampling" object inside BENCH_collect.json: one
// section accumulating labeled runs, so the full set and the CI smoke land
// side by side. The rest of the file (the collection-pipeline microbench
// results recorded by make bench-collect) is preserved untouched.
type samplingSection struct {
	Benchmark   string          `json:"benchmark"`
	UpdatedUnix int64           `json:"updated_unix"`
	Runs        map[string]*run `json:"runs"`
}

// writeBenchFile merges one labeled run into path's "sampling" section,
// preserving runs recorded under other labels and every other top-level
// field of the file (BENCH_collect.json also archives the collector
// microbenchmarks). A corrupt file is replaced, not appended to.
func writeBenchFile(path, label string, r *run) error {
	top := map[string]json.RawMessage{}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, &top)
	}
	sec := &samplingSection{Runs: map[string]*run{}}
	if raw, ok := top["sampling"]; ok {
		_ = json.Unmarshal(raw, sec)
		if sec.Runs == nil {
			sec.Runs = map[string]*run{}
		}
	}
	sec.Benchmark = "sampling-policy-collect"
	sec.UpdatedUnix = time.Now().Unix()
	sec.Runs[label] = r
	secRaw, err := json.Marshal(sec)
	if err != nil {
		return err
	}
	top["sampling"] = secRaw
	b, err := json.MarshalIndent(top, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
