// Command uncert-bench runs the held-out interval-calibration harness
// (Engine.CalibrateIntervals) over an app × machine matrix and records the
// labeled report into BENCH_uncert.json, merging with runs recorded under
// other labels — the same accumulate-by-label layout as BENCH_serve.json.
//
//	go run ./scripts/uncert-bench                     # full matrix → BENCH_uncert.json
//	go run ./scripts/uncert-bench -label smoke \
//	    -apps stencil3d,cgsolve -machines bluewaters,kraken \
//	    -assert-min-cov 0.75 -assert-max-cov 1.0      # CI smoke with acceptance gates
//
// The -assert flags turn the run into a pass/fail check on the 90% band's
// empirical coverage: outside [min, max] the process exits 1.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tracex"
)

func main() {
	fs := flag.NewFlagSet("uncert-bench", flag.ExitOnError)
	outPath := fs.String("out", "BENCH_uncert.json", "result file to create or update (\"\" = stdout only)")
	label := fs.String("label", "full", "label this run is recorded under in the result file")
	apps := fs.String("apps", "", "comma-separated applications (default: uh3d,stencil3d,cgsolve)")
	machines := fs.String("machines", "", "comma-separated machines (default: kraken,bluewaters)")
	sampleRefs := fs.Int("sample-refs", 50000, "per-block simulated references during collection")
	assertMinCov := fs.Float64("assert-min-cov", -1, "fail unless the 90% band's coverage is at least this (-1 disables)")
	assertMaxCov := fs.Float64("assert-max-cov", -1, "fail unless the 90% band's coverage is at most this (-1 disables)")
	_ = fs.Parse(os.Args[1:]) // ExitOnError: Parse never returns an error

	cfg := tracex.CalibrationConfig{
		Collect: tracex.CollectOptions{SampleRefs: *sampleRefs},
	}
	if *apps != "" {
		cfg.Apps = splitList(*apps)
	}
	if *machines != "" {
		cfg.Machines = splitList(*machines)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	eng := tracex.NewEngine()
	defer eng.Close()

	start := time.Now()
	rep, err := eng.CalibrateIntervals(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uncert-bench: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	printReport(rep, *label, elapsed)
	if *outPath != "" {
		if err := writeBenchFile(*outPath, *label, &run{
			Apps: cfg.Apps, Machines: cfg.Machines, SampleRefs: *sampleRefs,
			ElapsedSeconds: elapsed.Seconds(), Report: rep,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "uncert-bench: writing %s: %v\n", *outPath, err)
			os.Exit(1)
		}
		fmt.Printf("recorded run %q in %s\n", *label, *outPath)
	}

	cov := rep.CoverageAt(0.9)
	if *assertMinCov >= 0 && cov < *assertMinCov {
		fmt.Fprintf(os.Stderr, "uncert-bench: 90%% coverage %.3f below the asserted minimum %.3f\n", cov, *assertMinCov)
		os.Exit(1)
	}
	if *assertMaxCov >= 0 && cov > *assertMaxCov {
		fmt.Fprintf(os.Stderr, "uncert-bench: 90%% coverage %.3f above the asserted maximum %.3f\n", cov, *assertMaxCov)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// printReport renders the per-cell bands and the per-level coverage table.
func printReport(rep *tracex.CalibrationReport, label string, elapsed time.Duration) {
	fmt.Printf("%s: %d cells in %.1fs\n", label, len(rep.Cells), elapsed.Seconds())
	for _, c := range rep.Cells {
		fmt.Printf("  %-14s %-12s inputs %v → %d: predicted %.2fs, actual %.2fs\n",
			c.App, c.Machine, c.InputCores, c.HeldOutCores, c.Predicted, c.Actual)
		for _, b := range c.Bands {
			mark := "miss"
			if b.Covered {
				mark = "ok"
			}
			fmt.Printf("    %2.0f%% [%9.2f, %9.2f] %s\n", 100*b.Level, b.Lo, b.Hi, mark)
		}
	}
	fmt.Printf("  %-6s %9s %14s\n", "level", "coverage", "mean rel width")
	for _, lc := range rep.Coverage {
		fmt.Printf("  %4.0f%%  %4d/%-4d %14.3f\n", 100*lc.Level, lc.Covered, lc.Cells, lc.MeanRelWidth)
	}
}

// run is one labeled calibration record in BENCH_uncert.json.
type run struct {
	Apps           []string                  `json:"apps,omitempty"`
	Machines       []string                  `json:"machines,omitempty"`
	SampleRefs     int                       `json:"sample_refs"`
	ElapsedSeconds float64                   `json:"elapsed_seconds"`
	Report         *tracex.CalibrationReport `json:"report"`
}

// benchFile is the BENCH_uncert.json layout: one file accumulating labeled
// runs, so the full matrix and the CI smoke land side by side.
type benchFile struct {
	Benchmark   string          `json:"benchmark"`
	UpdatedUnix int64           `json:"updated_unix"`
	Runs        map[string]*run `json:"runs"`
}

// writeBenchFile merges one labeled run into path, preserving runs recorded
// under other labels. A corrupt or foreign file is replaced, not appended to.
func writeBenchFile(path, label string, r *run) error {
	bf := &benchFile{Runs: map[string]*run{}}
	if raw, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(raw, bf)
		if bf.Runs == nil {
			bf.Runs = map[string]*run{}
		}
	}
	bf.Benchmark = "uncert-calibration"
	bf.UpdatedUnix = time.Now().Unix()
	bf.Runs[label] = r
	b, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
